package sim

import (
	"container/heap"

	"rackjoin/internal/netsched"
)

// netPassStats aggregates the scalar outputs of the network-pass event
// simulation, plus the per-link / per-machine ledger Result.Detail
// exposes to the health plane.
type netPassStats struct {
	stalls       uint64
	remoteMB     float64
	maxQueueSec  float64
	sumQueueSec  float64
	numTransfers uint64

	linkMB       [][]float64 // payload MB per directed link [src][dst]
	linkBusySec  [][]float64 // ingress wire time per directed link
	flushes      []uint64    // posted transfers per sender
	machStalls   []uint64    // buffer-reuse stalls per sender
	retransmits  []uint64    // fault-injected retransmissions per sender
	pacedWaitSec []float64   // pairing-gate wait per destination
}

// simulateNetworkPass event-simulates the network partitioning pass and
// returns the per-machine phase duration in seconds, the per-machine
// CPU-busy time, and the pass statistics (stalls, shipped MB, ingress
// queueing delays).
//
// Model: each partitioning thread consumes its input slice at the
// calibrated rate (remote-destined bytes at RemoteCPUFactor × psPart). A
// fixed-size buffer of a remote partition fills every
// bufMB/share(partition) input-MB; a full buffer is posted to the
// machine's FIFO egress link and then the owner's FIFO ingress link
// (store-and-forward through a non-blocking switch), both at the
// congestion-adjusted per-host bandwidth. A sender may have at most
// BuffersPerPartition transfers in flight per partition; exceeding that
// blocks the thread until the oldest completes (Section 4.2.1's buffer
// reuse discipline). Non-interleaved mode waits for every transfer; stream
// mode adds sender copy cost and per-message kernel overhead and waits for
// the egress stage only (the kernel socket buffer).
// busySec[m] is the CPU-busy time of machine m's partitioning threads
// (max across threads of pure compute, excluding blocked time): the
// capacity a pipelined run cannot reclaim, since those cycles are spoken
// for — netSec[m] − busySec[m] is the idle window partition-ready
// execution can fill with local-join work.
//
// With cfg.NetSched enabled the pass follows the communication schedule's
// pairing discipline: a sender enters the wire for a destination only
// when that destination's ingress backlog fits inside one pairing round
// (4 buffer-transfer times, core's default quantum) — senders never
// converge on a receiver, which is exactly what the round-based pairing
// achieves in core without a global clock (parked buffers keep the links
// busy in the meantime, so egress stays work-conserving). With
// cfg.SwitchContention > 0 the ingress service time of a transfer that
// found the link busy inflates with the queue depth — the receiver-side
// congestion collapse that scheduling avoids.
func simulateNetworkPass(cfg Config, partMBR, partMBS []float64, owner []int, broadcast, split []bool) (netSec, busySec []float64, stats netPassStats) {
	nm := cfg.Machines
	netSec = make([]float64, nm)
	busySec = make([]float64, nm)
	if nm == 1 {
		// Single machine: a pure local pass at full partitioning speed.
		total := 0.0
		for p := range partMBR {
			total += partMBR[p] + partMBS[p]
		}
		netSec[0] = total / (float64(cfg.Cores) * cfg.Cal.PsPart)
		busySec[0] = netSec[0]
		return netSec, busySec, stats
	}

	partThreads := cfg.Cores - 1
	np := len(partMBR)
	bufMB := float64(cfg.BufferSize) / (1 << 20)
	rate := cfg.Net.Bandwidth(nm) * cfg.LinkEfficiency // payload MB/s per host link
	if rate <= 0 {
		rate = 1
	}
	secPerMB := 1 / rate
	totalMB := 0.0
	for p := 0; p < np; p++ {
		totalMB += partMBR[p] + partMBS[p]
	}
	if totalMB == 0 {
		return netSec, busySec, stats
	}

	s := &netSim{
		cfg:          cfg,
		egress:       make([]float64, nm),
		ingress:      make([]float64, nm),
		linkSecPerMB: secPerMB,
		dropAcc:      make([]float64, nm),
	}
	s.stats.linkMB = make([][]float64, nm)
	s.stats.linkBusySec = make([][]float64, nm)
	for m := 0; m < nm; m++ {
		s.stats.linkMB[m] = make([]float64, nm)
		s.stats.linkBusySec[m] = make([]float64, nm)
	}
	s.stats.flushes = make([]uint64, nm)
	s.stats.machStalls = make([]uint64, nm)
	s.stats.retransmits = make([]uint64, nm)
	s.stats.pacedWaitSec = make([]float64, nm)
	if cfg.NetSched != netsched.Off {
		// Demand matrix in MB: every machine holds 1/nm of each partition;
		// non-resident partitions ship to their owner, broadcast partitions
		// replicate the inner side to every peer.
		demand := make([][]float64, nm)
		for m := range demand {
			demand[m] = make([]float64, nm)
		}
		for p := 0; p < np; p++ {
			if split[p] {
				// Skew engine: inner replicas to every peer plus the
				// dealt (nm-1)/nm outer share, spread evenly.
				perPeer := partMBR[p]/float64(nm) + partMBS[p]/float64(nm*nm)
				for m := 0; m < nm; m++ {
					for d := 0; d < nm; d++ {
						if d != m {
							demand[m][d] += perPeer
						}
					}
				}
				continue
			}
			if broadcast[p] {
				rMB := partMBR[p] / float64(nm)
				for m := 0; m < nm; m++ {
					for d := 0; d < nm; d++ {
						if d != m {
							demand[m][d] += rMB
						}
					}
				}
				continue
			}
			for m := 0; m < nm; m++ {
				if owner[p] != m {
					demand[m][owner[p]] += (partMBR[p] + partMBS[p]) / float64(nm)
				}
			}
		}
		s.plan = netsched.BuildPlan(cfg.NetSched, nm, demand)
		s.roundSec = 4 * bufMB * secPerMB // core's default quantum, in time
	}

	// Build the threads. Every machine holds 1/nm of the input; each of
	// its partitioning threads holds an equal slice with the global
	// partition mix.
	remoteMB := 0.0
	inputPerThread := totalMB / float64(nm*partThreads)
	for m := 0; m < nm; m++ {
		for t := 0; t < partThreads; t++ {
			th := &simThread{machine: m, inputEnd: inputPerThread}
			var localFrac, remoteFrac float64
			addFlow := func(p, dest int, share float64) {
				remoteFrac += share
				f := &flowState{
					partition: p,
					dest:      dest,
					share:     share,
					credits:   cfg.BuffersPerPartition,
				}
				th.flows = append(th.flows, f)
				firstFill := bufMB / share
				if firstFill <= th.inputEnd {
					heap.Push(&th.fills, fillEvent{pos: firstFill, flow: len(th.flows) - 1})
				}
			}
			for p := 0; p < np; p++ {
				rShare := partMBR[p] / totalMB
				sShare := partMBS[p] / totalMB
				if rShare+sShare == 0 {
					continue
				}
				if split[p] {
					// Skew engine: the inner side replicates to every
					// peer and the outer side is dealt round-robin — a
					// 1/nm share stays local, the rest fans out evenly
					// instead of converging on the owner.
					localFrac += rShare + sShare/float64(nm)
					for d := 0; d < nm; d++ {
						if d == m {
							continue
						}
						if rShare > 0 {
							addFlow(p, d, rShare)
						}
						if sShare > 0 {
							addFlow(p, d, sShare/float64(nm))
						}
					}
					continue
				}
				if broadcast[p] {
					// Work sharing: outer tuples stay local; the inner
					// side is written locally and replicated to every
					// peer (one flow per destination).
					localFrac += rShare + sShare
					if rShare > 0 {
						for d := 0; d < nm; d++ {
							if d != m {
								addFlow(p, d, rShare)
							}
						}
					}
					continue
				}
				if owner[p] == m {
					localFrac += rShare + sShare
					continue
				}
				addFlow(p, owner[p], rShare+sShare)
			}
			// Thread-seconds per input MB: local bytes at psPart, remote
			// bytes at the buffer-management-penalised rate. A slowed
			// machine's threads run at a fraction of the calibrated speed.
			th.secPerInputMB = (localFrac/cfg.Cal.PsPart +
				remoteFrac/(cfg.RemoteCPUFactor*cfg.Cal.PsPart)) / cfg.machineFactor(m)
			remoteMB += remoteFrac * inputPerThread
			s.threads = append(s.threads, th)
		}
	}

	// Prime the event queue: every thread computes towards its first fill
	// (or straight to end of input).
	for i, th := range s.threads {
		s.scheduleNext(i, th, 0)
	}
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		s.step(ev.thread, ev.time)
	}

	for _, th := range s.threads {
		if th.finish > netSec[th.machine] {
			netSec[th.machine] = th.finish
		}
		if busy := th.inputEnd * th.secPerInputMB; busy > busySec[th.machine] {
			busySec[th.machine] = busy
		}
	}
	// A receiver's pass also lasts until its last arrival is placed.
	for m := 0; m < nm; m++ {
		if s.ingress[m] > netSec[m] {
			netSec[m] = s.ingress[m]
		}
	}
	stats = s.stats
	stats.remoteMB = remoteMB
	return netSec, busySec, stats
}

// flowState tracks one (thread, remote partition) stream.
type flowState struct {
	partition int
	dest      int
	share     float64
	credits   int
	// inflight holds completion times of posted transfers, FIFO.
	inflight ringF64
	// flushedMB counts payload already shipped, to size the final
	// partial buffer.
	flushedMB float64
}

type fillEvent struct {
	pos  float64
	flow int
}

type fillHeap []fillEvent

func (h fillHeap) Len() int            { return len(h) }
func (h fillHeap) Less(i, j int) bool  { return h[i].pos < h[j].pos }
func (h fillHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fillHeap) Push(x interface{}) { *h = append(*h, x.(fillEvent)) }
func (h *fillHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type event struct {
	time   float64
	thread int
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].time < h[j].time }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// simThread is one partitioning thread's state machine.
type simThread struct {
	machine       int
	inputEnd      float64 // MB of input to consume
	lastPos       float64 // MB consumed
	secPerInputMB float64
	fills         fillHeap
	flows         []*flowState

	// pendingFlow is the flow whose buffer completes at the scheduled
	// event time; -1 when heading to end-of-input; -2 when draining the
	// tail (partial buffers, then outstanding completions).
	pendingFlow int
	tailCursor  int
	finish      float64
	done        bool
}

type netSim struct {
	cfg          Config
	threads      []*simThread
	events       eventHeap
	egress       []float64 // per-machine link busy-until
	ingress      []float64
	linkSecPerMB float64
	plan         *netsched.Plan // nil when unscheduled
	roundSec     float64        // pairing-window length
	dropAcc      []float64      // per-sender drop-rate accumulator
	stats        netPassStats
}

// paceStart returns the earliest time ≥ t at which the pairing
// discipline lets a transfer from m reach dest's ingress port: the
// destination's backlog must fit inside one pairing round. The wait is
// spent parked at the sender — core's parking keeps the egress link busy
// with in-round traffic in the meantime, so the sender's link stays
// work-conserving. Unscheduled runs — and demand edges the plan does not
// gate — pass through unchanged.
func (s *netSim) paceStart(m, dest int, t float64) float64 {
	if s.plan == nil || !s.plan.Scheduled(m, dest) {
		return t
	}
	if gate := s.ingress[dest] - s.roundSec; gate > t {
		return gate
	}
	return t
}

// scheduleNext plans the thread's next action from time now: the next
// buffer fill, or entering the tail phase at end of input.
func (s *netSim) scheduleNext(i int, th *simThread, now float64) {
	if th.fills.Len() > 0 {
		f := th.fills[0]
		dt := (f.pos - th.lastPos) * th.secPerInputMB
		th.pendingFlow = f.flow
		heap.Push(&s.events, event{time: now + dt, thread: i})
		return
	}
	dt := (th.inputEnd - th.lastPos) * th.secPerInputMB
	th.pendingFlow = -1
	heap.Push(&s.events, event{time: now + dt, thread: i})
}

// step executes the thread's pending action at simulated time now.
func (s *netSim) step(i int, now float64) {
	th := s.threads[i]
	if th.done {
		return
	}
	switch {
	case th.pendingFlow >= 0:
		s.stepFill(i, th, now)
	case th.pendingFlow == -1:
		// End of input reached: enter the tail phase.
		th.lastPos = th.inputEnd
		th.pendingFlow = -2
		s.stepTail(i, th, now)
	default:
		s.stepTail(i, th, now)
	}
}

// stepFill handles "buffer for flow f is full at input position pos".
func (s *netSim) stepFill(i int, th *simThread, now float64) {
	fe := heap.Pop(&th.fills).(fillEvent)
	f := th.flows[fe.flow]
	if f.credits == 0 {
		// Blocked on buffer reuse: resume when the oldest transfer of
		// this flow completes.
		ct := f.inflight.front()
		if ct > now {
			s.stats.stalls++
			s.stats.machStalls[th.machine]++
			heap.Push(&th.fills, fe) // re-examine the same fill
			th.pendingFlow = fe.flow
			heap.Push(&s.events, event{time: ct, thread: i})
			return
		}
		f.inflight.pop()
		f.credits++
	}
	// Reap any other completions that already happened (free polling).
	for f.inflight.len() > 0 && f.inflight.front() <= now {
		f.inflight.pop()
		f.credits++
	}
	bufMB := float64(s.cfg.BufferSize) / (1 << 20)
	wait := s.post(th, f, bufMB, now)
	th.lastPos = fe.pos
	next := fe.pos + bufMB/f.share
	if next <= th.inputEnd {
		heap.Push(&th.fills, fillEvent{pos: next, flow: fe.flow})
	}
	s.scheduleNext(i, th, now+wait)
}

// stepTail flushes partial buffers one flow per event, then drains all
// outstanding completions.
func (s *netSim) stepTail(i int, th *simThread, now float64) {
	bufMB := float64(s.cfg.BufferSize) / (1 << 20)
	for th.tailCursor < len(th.flows) {
		f := th.flows[th.tailCursor]
		partial := f.share*th.inputEnd - f.flushedMB
		if partial <= 1e-12 {
			th.tailCursor++
			continue
		}
		if partial > bufMB {
			partial = bufMB // guard against accumulation error
		}
		if f.credits == 0 {
			ct := f.inflight.front()
			if ct > now {
				s.stats.stalls++
				s.stats.machStalls[th.machine]++
				heap.Push(&s.events, event{time: ct, thread: i})
				return
			}
			f.inflight.pop()
			f.credits++
		}
		wait := s.post(th, f, partial, now)
		th.tailCursor++
		if wait > 0 {
			heap.Push(&s.events, event{time: now + wait, thread: i})
			return
		}
	}
	// Drain: the pass ends for this thread when its last transfer is
	// acknowledged.
	drain := now
	for _, f := range th.flows {
		for f.inflight.len() > 0 {
			ct := f.inflight.pop()
			if ct > drain {
				drain = ct
			}
		}
	}
	th.finish = drain
	th.done = true
}

// post books one transfer of size MB on the egress link of the sender and
// the ingress link of the destination, records the completion in the
// flow's in-flight ring and returns how long the *thread* must wait before
// continuing (0 when fully interleaved).
func (s *netSim) post(th *simThread, f *flowState, size, now float64) (wait float64) {
	cpu := 0.0
	if s.cfg.Mode == ModeStream {
		// Kernel copy (socket write) burns thread time before the NIC
		// sees the data, plus a syscall-sized per-message overhead.
		copyRate := s.cfg.Net.CopyRate
		if copyRate <= 0 {
			copyRate = 490
		}
		cpu = size/copyRate + s.cfg.Net.MsgOverhead
	}
	start := now + cpu

	eg := s.egress[th.machine]
	if start > eg {
		eg = start
	}
	egDone := eg + size*s.linkSecPerMB + s.cfg.Net.MsgOverhead
	s.egress[th.machine] = egDone

	// Communication schedule: pairing keeps senders from converging on a
	// receiver — a transfer to a backlogged destination waits parked at
	// the sender until the destination can absorb it.
	entry := s.paceStart(th.machine, f.dest, egDone)
	if entry > egDone {
		s.stats.pacedWaitSec[f.dest] += entry - egDone
	}
	in := s.ingress[f.dest]
	queued := 0.0
	if in > entry {
		queued = in - entry
	} else {
		in = entry
	}
	// Fault injection: a degraded link delivers payload at a fraction of
	// the calibrated rate; a lossy sender re-ships every 1/rate-th
	// transfer (deterministic accumulator — no RNG, runs stay
	// reproducible), doubling its wire time.
	service := size * s.linkSecPerMB / s.cfg.linkFactor(th.machine, f.dest)
	if rate := s.cfg.dropRate(th.machine); rate > 0 {
		s.dropAcc[th.machine] += rate
		if s.dropAcc[th.machine] >= 1 {
			s.dropAcc[th.machine]--
			service *= 2
			s.stats.retransmits[th.machine]++
		}
	}
	if c := s.cfg.SwitchContention; c > 0 && queued > 0 {
		// Receiver-side congestion: concurrent senders converging on one
		// ingress port degrade its effective rate (the paper's switch
		// contention measurements). Depth is the queueing delay in units
		// of this transfer's service time, capped at a fan-in of 16.
		depth := queued / service
		if depth > 16 {
			depth = 16
		}
		service *= 1 + c*depth
	}
	inDone := in + service
	s.ingress[f.dest] = inDone
	if queued > s.stats.maxQueueSec {
		s.stats.maxQueueSec = queued
	}
	s.stats.sumQueueSec += queued
	s.stats.numTransfers++
	s.stats.linkMB[th.machine][f.dest] += size
	s.stats.linkBusySec[th.machine][f.dest] += service
	s.stats.flushes[th.machine]++

	f.flushedMB += size

	switch s.cfg.Mode {
	case ModeStream:
		// The sender unblocks when the kernel buffer drains (egress).
		return egDone - now
	case ModeNonInterleaved:
		// Section 6.3's first RDMA variant: wait for the remote ack.
		return inDone - now
	default:
		f.inflight.push(inDone)
		f.credits--
		return cpu
	}
}

// ringF64 is a tiny FIFO ring for in-flight completion times (capacity
// grows as needed; BuffersPerPartition is small).
type ringF64 struct {
	buf  []float64
	head int
	n    int
}

func (r *ringF64) len() int { return r.n }

func (r *ringF64) push(v float64) {
	if r.n == len(r.buf) {
		grown := make([]float64, 2*len(r.buf)+4)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ringF64) front() float64 { return r.buf[r.head] }

func (r *ringF64) pop() float64 {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}
