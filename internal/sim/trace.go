package sim

import (
	"time"

	"rackjoin/internal/trace"
)

// BuildTrace converts a simulated execution into a causal trace with the
// same span vocabulary a real run records — per-machine "run" roots,
// "phase" spans for histogram / network partition / local+build-probe,
// barrier spans between the synchronized phases and "msg" flow edges for
// the all-to-all dependency of the network pass — so the Chrome export
// and the critical-path analyzer work identically on simulated and
// measured runs.
//
// skews models per-machine clock skew: machine m stamps its events on a
// local clock running skews[m] ahead of the shared simulation epoch, and
// the recorder is told so via SetClockOffset. The exported events are
// therefore aligned on the shared epoch regardless of the skew — the
// sim-fabric analogue of normalizing distributed hosts' wall clocks. A
// nil or short skews slice means the remaining machines' clocks are
// perfect.
func BuildTrace(cfg Config, res *Result, skews []time.Duration) *trace.Recorder {
	r := trace.New()
	base := time.Now()

	nm := len(res.PerMachine)
	skew := func(m int) time.Duration {
		if m < len(skews) {
			return skews[m]
		}
		return 0
	}
	at := func(m int, offset time.Duration) time.Time {
		// The machine's local clock reads (shared time + skew).
		return base.Add(offset + skew(m))
	}
	for m := range skews {
		if m < nm {
			r.SetClockOffset(m, skews[m])
		}
	}

	type marks struct {
		histEnd, netEnd, total time.Duration
		net, local             trace.SpanID
	}
	ms := make([]marks, nm)
	// Barriers separate histogram from the network pass and close the run;
	// all machines enter at their own local phase end and leave together at
	// the cluster-wide latest (which is what Machine.Barrier serializes).
	var histMax, totalMax time.Duration
	for m, pt := range res.PerMachine {
		ms[m].histEnd = pt.Histogram
		ms[m].netEnd = pt.Histogram + pt.NetworkPartition
		ms[m].total = pt.Total()
		if pt.Histogram > histMax {
			histMax = pt.Histogram
		}
		if ms[m].total > totalMax {
			totalMax = ms[m].total
		}
	}

	for m := range ms {
		run := r.RecordSpan(m, "run", "run", 0, at(m, 0), at(m, totalMax), 0)
		r.RecordSpan(m, "phase", "histogram", run, at(m, 0), at(m, ms[m].histEnd), 0)
		r.RecordSpan(m, "barrier", "after histogram", run, at(m, ms[m].histEnd), at(m, histMax), 0)
		ms[m].net = r.RecordSpan(m, "phase", "network partition", run,
			at(m, histMax), at(m, histMax+ms[m].netEnd-ms[m].histEnd), 0)
		ms[m].local = r.RecordSpan(m, "phase", "local+build-probe", run,
			at(m, histMax+ms[m].netEnd-ms[m].histEnd), at(m, histMax+ms[m].total-ms[m].histEnd), 0)
		r.RecordSpan(m, "barrier", "final", run, at(m, histMax+ms[m].total-ms[m].histEnd), at(m, totalMax), 0)
	}

	// The all-to-all of the network pass: machine m's local join work is
	// gated by every sender's outbound pass (the simulator's netSec already
	// folds the transfer tail into the receiver's network phase).
	for m := range ms {
		for src := range ms {
			if src == m {
				continue
			}
			r.FlowEdge(ms[src].net, ms[m].local, "msg")
		}
	}
	return r
}

// TraceSkews returns a deterministic per-machine clock-skew vector for
// demonstration traces: machine m's clock runs (m+1)·spread ahead of the
// epoch on even machines and behind it on odd ones, so misalignment would
// be clearly visible in an export that failed to normalize.
func TraceSkews(machines int, spread time.Duration) []time.Duration {
	skews := make([]time.Duration, machines)
	for m := range skews {
		skews[m] = time.Duration(m+1) * spread
		if m%2 == 1 {
			skews[m] = -skews[m]
		}
	}
	return skews
}
