package sim

import (
	"testing"

	"rackjoin/internal/model"
)

// skewBase is the Figure-8-shaped workload the skew-engine tests run: a
// large outer relation whose foreign keys follow a Zipf distribution over
// a 128M-key inner domain, on a 16-machine QDR rack.
func skewBase(theta float64) Config {
	return Config{
		Machines: 16, Cores: 8, Net: model.QDR(),
		RTuples: 128 << 20, STuples: 2048 << 20,
		Skew: theta,
	}
}

func spread(r *Result) (max, min float64) {
	min = r.PerMachine[0].Total().Seconds()
	for _, pm := range r.PerMachine {
		tot := pm.Total().Seconds()
		if tot > max {
			max = tot
		}
		if tot < min {
			min = tot
		}
	}
	return
}

// TestSkewEngineAcceptance is the headline requirement: at 16 machines
// under Zipf 1.25 the skew engine must cut the join time by ≥ 1.5× and
// the straggler lag (slowest minus fastest machine) by ≥ 3×, while a
// uniform workload stays within 3% of the baseline.
func TestSkewEngineAcceptance(t *testing.T) {
	off := mustRun(t, skewBase(1.25))
	on := skewBase(1.25)
	on.SkewEngine = true
	onr := mustRun(t, on)

	offSec := off.Phases.Total().Seconds()
	onSec := onr.Phases.Total().Seconds()
	if onSec*1.5 > offSec {
		t.Errorf("skew engine speedup %.2f× at θ=1.25, want ≥ 1.5× (off %.2fs, on %.2fs)",
			offSec/onSec, offSec, onSec)
	}
	offMax, offMin := spread(off)
	onMax, onMin := spread(onr)
	offLag, onLag := offMax-offMin, onMax-onMin
	if onLag*3 > offLag {
		t.Errorf("straggler lag %.3fs → %.3fs, want ≥ 3× reduction", offLag, onLag)
	}

	uOff := mustRun(t, skewBase(0))
	uCfg := skewBase(0)
	uCfg.SkewEngine = true
	uOn := mustRun(t, uCfg)
	a, b := uOff.Phases.Total().Seconds(), uOn.Phases.Total().Seconds()
	if diff := (b - a) / a; diff > 0.03 || diff < -0.03 {
		t.Errorf("uniform workload moved %.1f%% with the engine on, want within 3%%", 100*diff)
	}
	if uOn.Detail != nil && len(uOn.Detail.SplitPartitions) != 0 {
		t.Errorf("uniform workload split partitions: %v", uOn.Detail.SplitPartitions)
	}
}

// TestSkewEngineDetail: the ledger must expose what was split and how
// much replication it cost, and split partitions become resident on
// every machine.
func TestSkewEngineDetail(t *testing.T) {
	cfg := skewBase(1.25)
	cfg.SkewEngine = true
	r := mustRun(t, cfg)
	if r.Detail == nil {
		t.Fatal("no network-pass detail")
	}
	if len(r.Detail.SplitPartitions) == 0 {
		t.Fatal("no split partitions at θ=1.25")
	}
	if r.Detail.ReplicatedMB <= 0 {
		t.Fatal("no replicated traffic accounted")
	}
	np := 1 << uint(10) // Defaults(): NetworkBits 10
	want := np + (cfg.Machines-1)*len(r.Detail.SplitPartitions)
	total := 0
	for _, n := range r.PartitionsPerMachine {
		total += n
	}
	if total != want {
		t.Errorf("resident partitions sum %d, want %d (np + (nm-1)·splits)", total, want)
	}
	for _, p := range r.Detail.SplitPartitions {
		if r.Detail.PartitionMB[p] <= 0 {
			t.Errorf("split partition %d shipped nothing", p)
		}
	}
}

// TestSkewEngineThreshold: raising the threshold above the hottest key's
// share disables splitting; the run then matches the baseline.
func TestSkewEngineThreshold(t *testing.T) {
	cfg := skewBase(1.25)
	cfg.SkewEngine = true
	cfg.SkewThreshold = 0.9
	r := mustRun(t, cfg)
	if r.Detail != nil && len(r.Detail.SplitPartitions) != 0 {
		t.Fatalf("threshold 0.9 still split %v", r.Detail.SplitPartitions)
	}
	// The engine still implies mid-run task splitting, so the comparable
	// baseline is SkewSplit, not the plain run.
	baseCfg := skewBase(1.25)
	baseCfg.SkewSplit = true
	base := mustRun(t, baseCfg)
	a, b := base.Phases.Total().Seconds(), r.Phases.Total().Seconds()
	if diff := (b - a) / a; diff > 0.01 || diff < -0.01 {
		t.Errorf("suppressed engine moved the total %.1f%%, want within 1%%", 100*diff)
	}
}

// TestSkewEngineMonotoneBenefit: the more skew, the bigger the win.
func TestSkewEngineMonotoneBenefit(t *testing.T) {
	prev := 1.0
	for _, theta := range []float64{1.05, 1.25, 1.5} {
		off := mustRun(t, skewBase(theta))
		cfg := skewBase(theta)
		cfg.SkewEngine = true
		on := mustRun(t, cfg)
		speedup := off.Phases.Total().Seconds() / on.Phases.Total().Seconds()
		if speedup < prev {
			t.Errorf("θ=%.2f speedup %.2f× below θ-lighter run's %.2f×", theta, speedup, prev)
		}
		prev = speedup
	}
}
