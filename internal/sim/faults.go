package sim

import "fmt"

// Faults is the simulator's fault-injection plan: controlled degradations
// applied to the otherwise-calibrated model so the health plane's
// detectors (internal/health) can be validated against known culprits.
// The zero value (and a nil pointer) injects nothing. Faults lives behind
// a pointer on Config so the value copies the simulator passes around
// share one plan.
type Faults struct {
	// link maps a directed (src,dst) pair to a bandwidth factor in
	// (0, 1]: the link delivers payload at factor × the calibrated rate.
	link map[[2]int]float64
	// machine maps a machine to a CPU speed factor in (0, 1]: all its
	// compute (histogram, partitioning, local join) runs at factor × the
	// calibrated rates.
	machine map[int]float64
	// drop maps a sender to a buffer-drop rate in [0, 1): that fraction
	// of its posted transfers is lost on the wire and retransmitted
	// (deterministically, every 1/rate-th transfer), doubling the wire
	// time of the affected transfer.
	drop map[int]float64
	// dropAll applies a drop rate to every sender (per-machine entries
	// take precedence).
	dropAll float64
}

// DegradeLink degrades the directed link src→dst to factor × its
// calibrated bandwidth (factor in (0, 1]; 1 is a no-op).
func (c *Config) DegradeLink(src, dst int, factor float64) {
	c.faults().setLink(src, dst, factor)
}

// SlowMachine degrades all of machine m's compute to factor × the
// calibrated rates (factor in (0, 1]; 1 is a no-op).
func (c *Config) SlowMachine(m int, factor float64) {
	f := c.faults()
	if f.machine == nil {
		f.machine = make(map[int]float64)
	}
	f.machine[m] = factor
}

// DropBuffers makes every sender lose (and retransmit) rate of its
// posted buffers (rate in [0, 1)).
func (c *Config) DropBuffers(rate float64) {
	c.faults().dropAll = rate
}

// DropBuffersAt makes sender m lose (and retransmit) rate of its posted
// buffers (rate in [0, 1)).
func (c *Config) DropBuffersAt(m int, rate float64) {
	f := c.faults()
	if f.drop == nil {
		f.drop = make(map[int]float64)
	}
	f.drop[m] = rate
}

func (c *Config) faults() *Faults {
	if c.Faults == nil {
		c.Faults = &Faults{}
	}
	return c.Faults
}

func (f *Faults) setLink(src, dst int, factor float64) {
	if f.link == nil {
		f.link = make(map[[2]int]float64)
	}
	f.link[[2]int{src, dst}] = factor
}

// linkFactor returns the bandwidth factor of link src→dst (1 = healthy).
func (c *Config) linkFactor(src, dst int) float64 {
	if c.Faults == nil || c.Faults.link == nil {
		return 1
	}
	if f, ok := c.Faults.link[[2]int{src, dst}]; ok {
		return f
	}
	return 1
}

// machineFactor returns machine m's CPU speed factor (1 = healthy).
func (c *Config) machineFactor(m int) float64 {
	if c.Faults == nil || c.Faults.machine == nil {
		return 1
	}
	if f, ok := c.Faults.machine[m]; ok {
		return f
	}
	return 1
}

// dropRate returns sender m's buffer-drop rate (0 = healthy).
func (c *Config) dropRate(m int) float64 {
	if c.Faults == nil {
		return 0
	}
	if r, ok := c.Faults.drop[m]; ok {
		return r
	}
	return c.Faults.dropAll
}

// validateFaults range-checks the fault plan against the configuration.
func (c *Config) validateFaults() error {
	f := c.Faults
	if f == nil {
		return nil
	}
	for k, v := range f.link {
		if v <= 0 || v > 1 {
			return fmt.Errorf("sim: DegradeLink(%d,%d) factor %g outside (0,1]", k[0], k[1], v)
		}
		if k[0] < 0 || k[0] >= c.Machines || k[1] < 0 || k[1] >= c.Machines || k[0] == k[1] {
			return fmt.Errorf("sim: DegradeLink(%d,%d) is not a link of a %d-machine rack", k[0], k[1], c.Machines)
		}
	}
	for m, v := range f.machine {
		if v <= 0 || v > 1 {
			return fmt.Errorf("sim: SlowMachine(%d) factor %g outside (0,1]", m, v)
		}
		if m < 0 || m >= c.Machines {
			return fmt.Errorf("sim: SlowMachine(%d) outside %d machines", m, c.Machines)
		}
	}
	if f.dropAll < 0 || f.dropAll >= 1 {
		return fmt.Errorf("sim: DropBuffers rate %g outside [0,1)", f.dropAll)
	}
	for m, r := range f.drop {
		if r < 0 || r >= 1 {
			return fmt.Errorf("sim: DropBuffersAt(%d) rate %g outside [0,1)", m, r)
		}
		if m < 0 || m >= c.Machines {
			return fmt.Errorf("sim: DropBuffersAt(%d) outside %d machines", m, c.Machines)
		}
	}
	return nil
}
