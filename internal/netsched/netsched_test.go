package netsched

import (
	"sync"
	"testing"
)

func TestPolicyStringParse(t *testing.T) {
	for _, p := range []Policy{Off, Rotate, Weighted} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy parsed")
	}
	if p, err := ParsePolicy(""); err != nil || p != Off {
		t.Fatalf("empty policy: got %v, err %v", p, err)
	}
}

// Rotate plans must be perfect matchings covering every ordered pair
// exactly once per cycle.
func TestRotatePlanMatching(t *testing.T) {
	for _, nm := range []int{2, 3, 8, 16} {
		p := BuildPlan(Rotate, nm, nil)
		if p.NumRounds() != nm-1 {
			t.Fatalf("nm=%d: %d rounds, want %d", nm, p.NumRounds(), nm-1)
		}
		covered := make(map[[2]int]int)
		for r := 0; r < p.NumRounds(); r++ {
			seen := make([]bool, nm)
			for m := 0; m < nm; m++ {
				d := p.Target(m, int64(r))
				if d == m || d < 0 || d >= nm {
					t.Fatalf("nm=%d round %d: sender %d targets %d", nm, r, m, d)
				}
				if seen[d] {
					t.Fatalf("nm=%d round %d: target %d claimed twice", nm, r, d)
				}
				seen[d] = true
				covered[[2]int{m, d}]++
			}
		}
		if len(covered) != nm*(nm-1) {
			t.Fatalf("nm=%d: %d pairs covered, want %d", nm, len(covered), nm*(nm-1))
		}
		// Cyclic: round nm-1 repeats round 0.
		if p.Target(0, int64(nm-1)) != p.Target(0, 0) {
			t.Fatal("plan not cyclic")
		}
	}
}

func TestWeightedPlanProportional(t *testing.T) {
	// Machine 1 is a hot receiver: everyone ships it 4x the bytes of the
	// other targets.
	nm := 4
	demand := make([][]float64, nm)
	for m := range demand {
		demand[m] = make([]float64, nm)
		for d := 0; d < nm; d++ {
			if d == m {
				continue
			}
			demand[m][d] = 100
			if d == 1 {
				demand[m][d] = 400
			}
		}
	}
	p := BuildPlan(Weighted, nm, demand)
	if p.NumRounds() == 0 {
		t.Fatal("empty weighted plan")
	}
	slots := make([][]int, nm)
	for m := range slots {
		slots[m] = make([]int, nm)
	}
	for r := 0; r < p.NumRounds(); r++ {
		seen := make([]bool, nm)
		for m := 0; m < nm; m++ {
			d := p.Target(m, int64(r))
			if d < 0 {
				continue
			}
			if d == m {
				t.Fatalf("round %d: sender %d targets itself", r, m)
			}
			if seen[d] {
				t.Fatalf("round %d: target %d claimed twice", r, d)
			}
			seen[d] = true
			slots[m][d]++
		}
	}
	for m := 0; m < nm; m++ {
		for d := 0; d < nm; d++ {
			if d == m {
				continue
			}
			if slots[m][d] == 0 {
				t.Fatalf("edge %d→%d got no rounds", m, d)
			}
			if !p.Scheduled(m, d) {
				t.Fatalf("edge %d→%d not marked scheduled", m, d)
			}
		}
		if m == 1 {
			continue // the hot receiver does not ship to itself
		}
		for d := 0; d < nm; d++ {
			if d == m || d == 1 {
				continue
			}
			if slots[m][1] <= slots[m][d] {
				t.Fatalf("hot target 1 got %d slots from %d, cold target %d got %d", slots[m][1], m, d, slots[m][d])
			}
		}
	}
}

func TestWeightedPlanSparseDemand(t *testing.T) {
	// Only 0→1 ships anything; the other senders must never be gated.
	nm := 3
	demand := [][]float64{{0, 10, 0}, {0, 0, 0}, {0, 0, 0}}
	p := BuildPlan(Weighted, nm, demand)
	if !p.Scheduled(0, 1) {
		t.Fatal("demand edge not scheduled")
	}
	if p.Scheduled(0, 2) || p.Scheduled(1, 0) || p.Scheduled(2, 1) {
		t.Fatal("zero-demand edge gated")
	}
	found := false
	for r := 0; r < p.NumRounds(); r++ {
		if p.Target(0, int64(r)) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("0→1 never paired")
	}
}

// Empty or degenerate demand falls back to the rotate plan.
func TestWeightedPlanFallback(t *testing.T) {
	for _, demand := range [][][]float64{nil, {{0, 0}, {0, 0}}} {
		p := BuildPlan(Weighted, 2, demand)
		if p.NumRounds() != 1 || p.Target(0, 0) != 1 || p.Target(1, 0) != 0 {
			t.Fatalf("fallback plan wrong: %d rounds", p.NumRounds())
		}
	}
}

func TestSchedulerQuantumAdvance(t *testing.T) {
	p := BuildPlan(Rotate, 4, nil)
	s := NewScheduler(p, 0, 100)
	var transitions []int
	s.OnAdvance = func(round int64, target int, sent int64) {
		transitions = append(transitions, target)
	}
	first := s.Active()
	if first != 1 {
		t.Fatalf("machine 0 round 0 target %d, want 1", first)
	}
	if !s.Allowed(1) || s.Allowed(2) {
		t.Fatal("gating wrong in round 0")
	}
	s.Granted(2, 1000) // out-of-round grant must not advance
	if s.Round() != 0 {
		t.Fatal("out-of-round grant advanced the schedule")
	}
	s.Granted(1, 60)
	if s.Round() != 0 {
		t.Fatal("advanced before quantum")
	}
	s.Granted(1, 60)
	if s.Round() != 1 || s.Active() != 2 {
		t.Fatalf("round %d active %d after quantum, want 1/2", s.Round(), s.Active())
	}
	if len(transitions) != 1 || transitions[0] != 1 {
		t.Fatalf("transitions %v", transitions)
	}
}

func TestSchedulerKick(t *testing.T) {
	p := BuildPlan(Rotate, 4, nil)
	s := NewScheduler(p, 0, 100)
	if s.Kick() {
		t.Fatal("kick with nothing parked")
	}
	s.Park(2) // active is 1: the round is a dud
	if !s.Kick() {
		t.Fatal("dud round not kicked")
	}
	if s.Active() != 2 {
		t.Fatalf("active %d after kick, want 2", s.Active())
	}
	// Now the active target has parked work: no kick.
	if s.Kick() {
		t.Fatal("kicked past a round with parked work")
	}
	s.Unpark(2)
	s.Park(3)
	s.Granted(2, 10)
	if s.Kick() {
		t.Fatal("kicked a round that already granted bytes")
	}
}

// Round rotation under concurrent flush traffic: the -race half of the
// satellite torture coverage at the package level.
func TestSchedulerConcurrency(t *testing.T) {
	p := BuildPlan(Rotate, 8, nil)
	s := NewScheduler(p, 3, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				dest := (w + i) % 8
				if dest == 3 {
					continue
				}
				if s.Allowed(dest) {
					s.Granted(dest, 32)
				} else {
					s.Park(dest)
					s.Kick()
					s.Unpark(dest)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Round() < 0 {
		t.Fatal("round went backwards")
	}
}

// The adaptive feedback loop: hot-target histograms grow budgets to the
// ceiling; sustained pool stalls shrink every budget to the floor and
// never below one buffer per destination.
func TestAdaptiveConvergence(t *testing.T) {
	demand := []float64{0, 400, 100, 100} // dest 1 hot, dest 0 is self
	a := NewAdaptiveSizer(demand, 2, 1, 6)
	var resizes int
	a.OnResize = func(dest, oldB, newB int) { resizes++ }
	for i := 0; i < 20; i++ {
		a.Resize() // stall-free rounds
	}
	if got := a.Budget(1); got != 6 {
		t.Fatalf("hot budget %d after stall-free rounds, want ceiling 6", got)
	}
	if a.Budget(2) != 2 || a.Budget(3) != 2 {
		t.Fatalf("cold budgets moved: %d/%d", a.Budget(2), a.Budget(3))
	}
	if resizes != 4 {
		t.Fatalf("%d resize events, want 4 (hot growth 2→6)", resizes)
	}
	// Sustained stalls: everything converges to the floor.
	for i := 0; i < 20; i++ {
		a.NoteStall()
		a.Resize()
	}
	for d := 1; d < 4; d++ {
		if got := a.Budget(d); got != 1 {
			t.Fatalf("budget[%d] = %d under sustained stalls, want floor 1", d, got)
		}
	}
	// One more stalled round: still never below one buffer per target.
	a.NoteStall()
	a.Resize()
	for d := 1; d < 4; d++ {
		if a.Budget(d) < 1 {
			t.Fatalf("budget[%d] dropped below one buffer", d)
		}
	}
	// Recovery: stall-free rounds grow the hot target again.
	a.Resize()
	if a.Budget(1) != 2 {
		t.Fatalf("hot budget %d after recovery round, want 2", a.Budget(1))
	}
}

func TestAdaptiveConcurrentStalls(t *testing.T) {
	a := NewAdaptiveSizer([]float64{0, 10, 20}, 2, 1, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.NoteStall()
				a.Budget(1)
			}
		}()
	}
	wg.Wait()
	a.Resize()
	if a.Budget(2) != 1 {
		t.Fatalf("budget %d after stalls, want 1", a.Budget(2))
	}
}
