package netsched

import "sync"

// Scheduler paces one machine's buffer postings through the plan's
// pairing rounds. All partitioning threads of the machine share one
// Scheduler; the lock is taken per buffer flush (never per tuple), so
// contention is bounded by the flush rate.
//
// A sender advances its round when quantum bytes have been granted to
// the active target, when a Kick finds the active pairing idle (nothing
// parked for it, nothing granted yet — the target simply has no data
// this cycle), or when the tail drain Advances explicitly. Rounds are
// therefore quantum-paced rather than clock-synchronised: each round is
// a near-perfect matching across the rack, not an exact one.
type Scheduler struct {
	plan    *Plan
	me      int
	quantum int64

	// OnAdvance, when set, fires at each round transition with the
	// finished round's index, its target and the bytes it carried.
	// Called with the scheduler lock held; keep it cheap and do not call
	// back into the Scheduler.
	OnAdvance func(round int64, target int, sent int64)

	mu          sync.Mutex
	round       int64
	sent        int64 // bytes granted to the active target this round
	parked      []int // parked buffers per destination (all threads)
	parkedTotal int
}

// NewScheduler builds the runtime scheduler for machine me. quantum is
// the per-round byte budget before rotating to the next pairing.
func NewScheduler(plan *Plan, me int, quantum int64) *Scheduler {
	if quantum <= 0 {
		quantum = 1
	}
	s := &Scheduler{plan: plan, me: me, quantum: quantum, parked: make([]int, plan.nm)}
	s.mu.Lock()
	s.skipIdleLocked()
	s.mu.Unlock()
	return s
}

func (s *Scheduler) activeLocked() int { return s.plan.Target(s.me, s.round) }

// Active returns the current round's pairing target (-1 when idle).
func (s *Scheduler) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeLocked()
}

// Round returns the current round index.
func (s *Scheduler) Round() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Allowed reports whether a transfer to dest may post now: dest is the
// active pairing target, or the plan never gates it (no slots — traffic
// the demand matrix did not predict passes through unscheduled).
func (s *Scheduler) Allowed(dest int) bool {
	if !s.plan.Scheduled(s.me, dest) {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeLocked() == dest
}

// Granted accounts bytes posted to dest; reaching the quantum rotates
// the schedule to the next round. Grants to out-of-round destinations
// (liveness overrides, ungated edges) do not advance the round.
func (s *Scheduler) Granted(dest int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeLocked() != dest {
		return
	}
	s.sent += bytes
	if s.sent >= s.quantum {
		s.advanceLocked()
	}
}

// Park records a buffer held back for dest; Unpark releases it (the
// buffer is about to post, in or out of round).
func (s *Scheduler) Park(dest int) {
	s.mu.Lock()
	s.parked[dest]++
	s.parkedTotal++
	s.mu.Unlock()
}

// Unpark releases a parked buffer for dest.
func (s *Scheduler) Unpark(dest int) {
	s.mu.Lock()
	s.parked[dest]--
	s.parkedTotal--
	s.mu.Unlock()
}

// Kick advances the round if the active pairing is a dud — buffers are
// parked for other targets while the active one has nothing parked and
// nothing granted yet. Called under pool pressure; reports whether the
// round moved.
func (s *Scheduler) Kick() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.parkedTotal == 0 {
		return false
	}
	active := s.activeLocked()
	if active >= 0 && (s.parked[active] > 0 || s.sent > 0) {
		return false
	}
	s.advanceLocked()
	return true
}

// Advance rotates to the next round unconditionally: the tail drain
// uses it to cycle parked buffers out in pairing order.
func (s *Scheduler) Advance() {
	s.mu.Lock()
	s.advanceLocked()
	s.mu.Unlock()
}

func (s *Scheduler) advanceLocked() {
	if s.OnAdvance != nil {
		s.OnAdvance(s.round, s.activeLocked(), s.sent)
	}
	s.round++
	s.sent = 0
	s.skipIdleLocked()
}

// skipIdleLocked steps past rounds where this sender idles (weighted
// plans may leave gaps): an unsynchronised sender gains nothing by
// going dark while other machines pair up.
func (s *Scheduler) skipIdleLocked() {
	for i := 0; i < s.plan.NumRounds() && s.activeLocked() < 0; i++ {
		s.round++
	}
}
