// Package netsched implements application-level scheduling of the
// all-to-all network partitioning pass.
//
// The paper's pass is unscheduled: every machine posts transfers to
// every target as buffers fill. Rödiger et al. ("High-Speed Query
// Processing over High-Speed Networks") show that traffic shape
// collapsing under switch contention at rack scale, and fix it with an
// application-level scheduler that assigns sender→receiver pairings in
// rounds, so each round approximates a perfect matching and every
// ingress link sees one dominant sender at a time.
//
// This package provides the two ingredients:
//
//   - A Plan: the cyclic round table rounds[r][sender] = target. Rotate
//     plans pair sender m with target (m+1+r) mod nm — each round is an
//     exact matching. Weighted plans decompose the histogram-derived
//     demand matrix into matchings, giving hot targets proportionally
//     more rounds (a greedy Birkhoff-style decomposition).
//   - A per-sender runtime Scheduler that paces buffer postings through
//     the plan (quantum bytes per round, parking accounting, liveness
//     kicks), plus an AdaptiveSizer that grows per-target in-flight
//     budgets for hot targets and shrinks them under pool-stall
//     pressure.
//
// Plans are built from data every machine already holds after the
// histogram exchange, so all machines derive identical plans without
// extra coordination. Senders advance their rounds independently
// (quantum-paced, not clock-synchronised), which keeps each round a
// near-perfect matching rather than an exact one — the Rödiger et al.
// low-overhead variant.
package netsched

import "fmt"

// Policy selects the communication schedule of the network pass.
type Policy int

const (
	// Off disables scheduling: the unscheduled all-to-all baseline.
	Off Policy = iota
	// Rotate rotates each sender through the targets deterministically,
	// offset by machine ID, so each round forms a near-perfect matching.
	Rotate
	// Weighted builds pairing rounds from the histogram-derived demand
	// matrix, giving hot targets proportionally more rounds.
	Weighted
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Off:
		return "off"
	case Rotate:
		return "rotate"
	case Weighted:
		return "weighted"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses the String form (CLI flag values).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "rotate":
		return Rotate, nil
	case "weighted":
		return Weighted, nil
	}
	return Off, fmt.Errorf("netsched: unknown policy %q (want off, rotate or weighted)", s)
}

// Plan is a cyclic table of sender→target pairing rounds for nm
// machines. Identical on every machine by construction.
type Plan struct {
	nm     int
	rounds [][]int // rounds[r][sender] = target, -1 when the sender idles
	// sched[sender][dest] marks edges the plan carries slots for; a
	// destination outside the plan is never gated (defensive: traffic
	// the demand matrix did not predict passes through unscheduled).
	sched [][]bool
}

// BuildPlan derives the pairing rounds for the given policy. demand is
// the full bytes-to-ship matrix demand[sender][dest] (self entries
// ignored); Rotate plans ignore it, Weighted plans fall back to Rotate
// when it is empty or all-zero.
func BuildPlan(policy Policy, nm int, demand [][]float64) *Plan {
	if policy == Weighted {
		if p := weightedPlan(nm, demand); p != nil {
			return p
		}
	}
	return rotatePlan(nm)
}

// rotatePlan pairs sender m with target (m+1+r) mod nm in round r: nm-1
// rounds, each an exact matching, every ordered pair covered once per
// cycle.
func rotatePlan(nm int) *Plan {
	p := &Plan{nm: nm}
	p.sched = fullSched(nm)
	for r := 0; r < nm-1; r++ {
		round := make([]int, nm)
		for m := 0; m < nm; m++ {
			round[m] = (m + 1 + r) % nm
		}
		p.rounds = append(p.rounds, round)
	}
	return p
}

func fullSched(nm int) [][]bool {
	sched := make([][]bool, nm)
	for m := range sched {
		sched[m] = make([]bool, nm)
		for d := range sched[m] {
			sched[m][d] = d != m
		}
	}
	return sched
}

// weightedPlan decomposes the demand matrix into pairing rounds: every
// nonzero edge gets at least one round per cycle, hot edges get rounds
// proportional to their demand (scaled so the busiest link holds about
// 2(nm-1) slots — double the rotate granularity). Rounds are built
// greedily, most-loaded senders first, each claiming its heaviest
// remaining edge among the unclaimed receivers; the result is a
// near-minimal matching decomposition. Returns nil when the demand
// matrix is empty (caller falls back to rotate).
func weightedPlan(nm int, demand [][]float64) *Plan {
	if len(demand) != nm {
		return nil
	}
	maxLoad := 0.0
	for m := 0; m < nm; m++ {
		if len(demand[m]) != nm {
			return nil
		}
		var row float64
		for d := 0; d < nm; d++ {
			if d != m {
				row += demand[m][d]
			}
		}
		if row > maxLoad {
			maxLoad = row
		}
	}
	for d := 0; d < nm; d++ {
		var col float64
		for m := 0; m < nm; m++ {
			if m != d {
				col += demand[m][d]
			}
		}
		if col > maxLoad {
			maxLoad = col
		}
	}
	if maxLoad <= 0 {
		return nil
	}

	granularity := 2 * (nm - 1)
	quantum := maxLoad / float64(granularity)
	slots := make([][]int, nm)
	sched := make([][]bool, nm)
	remaining := make([]int, nm) // per-sender slot total
	total := 0
	for m := 0; m < nm; m++ {
		slots[m] = make([]int, nm)
		sched[m] = make([]bool, nm)
		for d := 0; d < nm; d++ {
			if d == m || demand[m][d] <= 0 {
				continue
			}
			n := int(demand[m][d]/quantum + 0.5)
			if n < 1 {
				n = 1
			}
			slots[m][d] = n
			sched[m][d] = true
			remaining[m] += n
			total += n
		}
	}
	if total == 0 {
		return nil
	}

	p := &Plan{nm: nm, sched: sched}
	order := make([]int, nm)
	for total > 0 {
		// Most-loaded senders pick first (stable by id): the heaviest
		// rows are the hardest to place, so they get first choice of
		// receiver each round.
		for m := range order {
			order[m] = m
		}
		for i := 1; i < nm; i++ { // insertion sort by remaining desc
			for j := i; j > 0 && remaining[order[j]] > remaining[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		round := make([]int, nm)
		for m := range round {
			round[m] = -1
		}
		used := make([]bool, nm)
		progress := false
		for _, m := range order {
			if remaining[m] == 0 {
				continue
			}
			best := -1
			for d := 0; d < nm; d++ {
				if slots[m][d] > 0 && !used[d] && (best < 0 || slots[m][d] > slots[m][best]) {
					best = d
				}
			}
			if best < 0 {
				continue // all of m's receivers claimed this round
			}
			round[m] = best
			used[best] = true
			slots[m][best]--
			remaining[m]--
			total--
			progress = true
		}
		if !progress {
			break // defensive: cannot happen while total > 0
		}
		p.rounds = append(p.rounds, round)
	}
	return p
}

// NumMachines returns the machine count the plan was built for.
func (p *Plan) NumMachines() int { return p.nm }

// NumRounds returns the cycle length.
func (p *Plan) NumRounds() int { return len(p.rounds) }

// Target returns the sender's pairing target in the given round (taken
// modulo the cycle length), or -1 when the sender idles that round.
func (p *Plan) Target(sender int, round int64) int {
	if len(p.rounds) == 0 {
		return -1
	}
	return p.rounds[int(round%int64(len(p.rounds)))][sender]
}

// Scheduled reports whether the plan carries slots for sender→dest.
// Unscheduled edges are never gated by the runtime scheduler.
func (p *Plan) Scheduled(sender, dest int) bool {
	if sender < 0 || sender >= p.nm || dest < 0 || dest >= p.nm {
		return false
	}
	return p.sched[sender][dest]
}
