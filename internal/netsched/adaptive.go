package netsched

import "sync/atomic"

// AdaptiveSizer adjusts per-destination transfer budgets: the maximum
// number of buffers a sender keeps in flight toward each destination.
// Budgets grow for destinations the histogram marks hot (deeper
// pipelines where the demand is) and shrink everywhere when the buffer
// pool stalls (the pool is the shared resource the budgets partition),
// resized once per scheduling round. The floor is one buffer per
// destination — every target must stay reachable — and the ceiling
// caps a hot destination's claim on the pool.
//
// Budget reads are atomic (posting threads poll them); NoteStall is
// atomic (pool stall hooks fire from any thread); Resize must be called
// from one goroutine at a time (the scheduler's round-transition hook,
// which runs under the scheduler lock).
type AdaptiveSizer struct {
	budgets []atomic.Int32
	hot     []bool
	min     int32
	max     int32
	stalls  atomic.Uint64
	seen    uint64 // stalls already acted on by Resize

	// OnResize, when set, fires for each destination whose budget
	// changed (from Resize's caller goroutine).
	OnResize func(dest, oldBudget, newBudget int)
}

// NewAdaptiveSizer builds budgets for len(demand) destinations,
// starting every destination at start within [min, max]. A destination
// is hot when its demand exceeds the mean of the nonzero entries —
// the histogram-driven growth signal.
func NewAdaptiveSizer(demand []float64, start, min, max int) *AdaptiveSizer {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if start < min {
		start = min
	}
	if start > max {
		start = max
	}
	n := len(demand)
	a := &AdaptiveSizer{
		budgets: make([]atomic.Int32, n),
		hot:     make([]bool, n),
		min:     int32(min),
		max:     int32(max),
	}
	var sum float64
	nonzero := 0
	for _, d := range demand {
		if d > 0 {
			sum += d
			nonzero++
		}
	}
	mean := 0.0
	if nonzero > 0 {
		mean = sum / float64(nonzero)
	}
	for d := range demand {
		a.budgets[d].Store(int32(start))
		a.hot[d] = demand[d] > 0 && demand[d] > mean
	}
	return a
}

// Budget returns the current in-flight budget for dest, in buffers.
func (a *AdaptiveSizer) Budget(dest int) int {
	return int(a.budgets[dest].Load())
}

// Hot reports whether the histogram marked dest hot.
func (a *AdaptiveSizer) Hot(dest int) bool { return a.hot[dest] }

// NoteStall records one buffer-pool stall; the next Resize shrinks.
func (a *AdaptiveSizer) NoteStall() { a.stalls.Add(1) }

// Resize applies one feedback step at a round boundary: stalls since
// the previous step shrink every budget by one (pool pressure — floor
// min, never below one buffer per destination); a stall-free round
// grows hot destinations by one (ceiling max).
func (a *AdaptiveSizer) Resize() {
	total := a.stalls.Load()
	stalled := total != a.seen
	a.seen = total
	for d := range a.budgets {
		old := a.budgets[d].Load()
		next := old
		if stalled {
			next = old - 1
			if next < a.min {
				next = a.min
			}
		} else if a.hot[d] {
			next = old + 1
			if next > a.max {
				next = a.max
			}
		}
		if next != old {
			a.budgets[d].Store(next)
			if a.OnResize != nil {
				a.OnResize(d, int(old), int(next))
			}
		}
	}
}
