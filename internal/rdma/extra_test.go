package rdma

import (
	"sync"
	"testing"
	"time"

	"rackjoin/internal/fabric"
)

func TestSRQRNRBlocksAndReleases(t *testing.T) {
	// A SEND arriving at an empty SRQ must park until a buffer is posted,
	// counting an RNR wait.
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	devA, devB := net.NewDevice(), net.NewDevice()
	pdA, pdB := devA.AllocPD(), devB.AllocPD()
	srq := pdB.CreateSRQ(4)
	scq := devA.NewCQ()
	rcq := devB.NewCQ()
	qpA, _ := pdA.CreateQP(QPConfig{SendCQ: scq, RecvCQ: devA.NewCQ()})
	qpB, _ := pdB.CreateQP(QPConfig{SendCQ: rcq, RecvCQ: rcq, SRQ: srq})
	if err := Connect(qpA, qpB); err != nil {
		t.Fatal(err)
	}
	src := mustMRAt(t, pdA, 32, 0)
	dst := mustMRAt(t, pdB, 32, AccessLocalWrite)

	if err := qpA.PostSend(SendWR{Op: OpSend, Signaled: true, Local: Segment{MR: src, Length: 32}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the send park at the SRQ
	if srq.RNRWaits() != 1 {
		t.Fatalf("RNRWaits = %d, want 1", srq.RNRWaits())
	}
	if err := srq.PostRecv(RecvWR{WRID: 9, Local: Segment{MR: dst, Length: 32}}); err != nil {
		t.Fatal(err)
	}
	if c := scq.Wait(); c.Err() != nil {
		t.Fatal(c.Err())
	}
	if c := rcq.Wait(); c.WRID != 9 {
		t.Fatalf("recv completion WRID = %d", c.WRID)
	}
}

func TestSRQCloseReleasesParkedSender(t *testing.T) {
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	devA, devB := net.NewDevice(), net.NewDevice()
	pdA, pdB := devA.AllocPD(), devB.AllocPD()
	srq := pdB.CreateSRQ(4)
	scq := devA.NewCQ()
	qpA, _ := pdA.CreateQP(QPConfig{SendCQ: scq, RecvCQ: devA.NewCQ()})
	qpB, _ := pdB.CreateQP(QPConfig{SendCQ: devB.NewCQ(), RecvCQ: devB.NewCQ(), SRQ: srq})
	if err := Connect(qpA, qpB); err != nil {
		t.Fatal(err)
	}
	src := mustMRAt(t, pdA, 8, 0)
	if err := qpA.PostSend(SendWR{Op: OpSend, Signaled: true, Local: Segment{MR: src, Length: 8}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	srq.Close()
	if c := scq.Wait(); c.Status != StatusRemoteAccessError {
		t.Fatalf("parked send should fail on SRQ close, got %+v", c)
	}
}

func TestCQConcurrentProducersAndConsumer(t *testing.T) {
	// One consumer Wait()s while many goroutines push; nothing may be
	// lost or duplicated.
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	cq := net.NewDevice().NewCQ()
	const producers, per = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				cq.push(Completion{WRID: uint64(p*per + i)})
			}
		}(p)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < producers*per; i++ {
		c := cq.Wait()
		if seen[c.WRID] {
			t.Fatalf("duplicate completion %d", c.WRID)
		}
		seen[c.WRID] = true
	}
	wg.Wait()
	if cq.Len() != 0 {
		t.Fatalf("leftover completions: %d", cq.Len())
	}
}

func TestWriteToClosedPeerQP(t *testing.T) {
	// SENDs parked at a closed QP complete with an error instead of
	// hanging.
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 8, 0)
	if err := p.qpA.PostSend(SendWR{Op: OpSend, Signaled: true, Local: Segment{MR: src, Length: 8}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	p.qpB.Close()
	if c := p.scqA.Wait(); c.Status != StatusRemoteAccessError {
		t.Fatalf("want error completion after peer close, got %+v", c)
	}
	// Posting to the closed QP itself fails synchronously.
	if err := p.qpB.PostSend(SendWR{Op: OpSend, Local: Segment{MR: src, Length: 8}}); err == nil {
		t.Fatal("post on closed QP should fail")
	}
}

func TestDeviceStatsAccumulate(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 64, 0)
	dst := mustMR(t, p.pdB, 64, AccessLocalWrite|AccessRemoteWrite|AccessRemoteRead|AccessRemoteAtomic)
	local := mustMR(t, p.pdA, 64, AccessLocalWrite)

	// One of each operation.
	if err := p.qpB.PostRecv(RecvWR{Local: Segment{MR: dst, Length: 64}}); err != nil {
		t.Fatal(err)
	}
	ops := []SendWR{
		{Op: OpSend, Signaled: true, Local: Segment{MR: src, Length: 16}},
		{Op: OpWrite, Signaled: true, Local: Segment{MR: src, Length: 32}, Remote: RemoteSegment{RKey: dst.RKey()}},
		{Op: OpRead, Signaled: true, Local: Segment{MR: local, Length: 8}, Remote: RemoteSegment{RKey: dst.RKey()}},
		{Op: OpFetchAdd, Signaled: true, Add: 1, Local: Segment{MR: local, Length: 8}, Remote: RemoteSegment{RKey: dst.RKey()}},
	}
	for _, wr := range ops {
		if err := p.qpA.PostSend(wr); err != nil {
			t.Fatal(err)
		}
		if c := p.scqA.Wait(); c.Err() != nil {
			t.Fatal(c.Err())
		}
	}
	s := p.devA.Stats()
	if s.Sends != 1 || s.Writes != 1 || s.Reads != 1 || s.Atomics != 1 {
		t.Fatalf("op counters wrong: %+v", s)
	}
	if s.BytesSent != 16+32 {
		t.Fatalf("BytesSent = %d, want 48", s.BytesSent)
	}
	if s.BytesReceived != 8 { // READ response
		t.Fatalf("BytesReceived = %d, want 8", s.BytesReceived)
	}
	sb := p.devB.Stats()
	if sb.BytesReceived != 16+32 || sb.BytesSent != 8 || sb.Recvs != 1 {
		t.Fatalf("peer counters wrong: %+v", sb)
	}
}

func TestFabricStatsThroughNetwork(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 1024, 0)
	dst := mustMR(t, p.pdB, 1024, AccessRemoteWrite)
	before := p.net.FabricStats()
	for i := 0; i < 4; i++ {
		if err := p.qpA.PostSend(SendWR{Op: OpWrite, Signaled: true,
			Local: Segment{MR: src, Length: 1024}, Remote: RemoteSegment{RKey: dst.RKey()}}); err != nil {
			t.Fatal(err)
		}
		if c := p.scqA.Wait(); c.Err() != nil {
			t.Fatal(c.Err())
		}
	}
	after := p.net.FabricStats()
	if after.Bytes-before.Bytes != 4096 {
		t.Fatalf("fabric bytes delta = %d, want 4096", after.Bytes-before.Bytes)
	}
	if after.Messages-before.Messages != 4 {
		t.Fatalf("fabric messages delta = %d, want 4", after.Messages-before.Messages)
	}
}
