package rdma

import (
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"

	"rackjoin/internal/fabric"
)

func atomicPair(t *testing.T) (*testPair, *MemoryRegion, *MemoryRegion) {
	t.Helper()
	p := newTestPair(t)
	local := mustMR(t, p.pdA, 8, AccessLocalWrite)
	remote := mustMR(t, p.pdB, 64, AccessRemoteAtomic|AccessRemoteWrite)
	return p, local, remote
}

func TestFetchAdd(t *testing.T) {
	p, local, remote := atomicPair(t)
	binary.LittleEndian.PutUint64(remote.Bytes()[8:], 100)
	for i := 0; i < 5; i++ {
		err := p.qpA.PostSend(SendWR{
			Op: OpFetchAdd, Signaled: true, Add: 7,
			Local:  Segment{MR: local, Length: 8},
			Remote: RemoteSegment{RKey: remote.RKey(), Offset: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		c := p.scqA.Wait()
		if c.Status != StatusSuccess || c.Op != OpFetchAdd {
			t.Fatalf("bad completion: %+v", c)
		}
		got := binary.LittleEndian.Uint64(local.Bytes())
		if got != 100+uint64(i)*7 {
			t.Fatalf("fetched %d, want %d", got, 100+uint64(i)*7)
		}
	}
	if final := binary.LittleEndian.Uint64(remote.Bytes()[8:]); final != 135 {
		t.Fatalf("remote value %d, want 135", final)
	}
	if p.devA.Stats().Atomics != 5 {
		t.Fatalf("Atomics stat = %d", p.devA.Stats().Atomics)
	}
}

func TestCompareSwap(t *testing.T) {
	p, local, remote := atomicPair(t)
	binary.LittleEndian.PutUint64(remote.Bytes(), 42)

	// Successful swap.
	if err := p.qpA.PostSend(SendWR{
		Op: OpCompareSwap, Signaled: true, Compare: 42, Swap: 99,
		Local:  Segment{MR: local, Length: 8},
		Remote: RemoteSegment{RKey: remote.RKey()},
	}); err != nil {
		t.Fatal(err)
	}
	if c := p.scqA.Wait(); c.Status != StatusSuccess {
		t.Fatalf("cas failed: %+v", c)
	}
	if binary.LittleEndian.Uint64(local.Bytes()) != 42 {
		t.Fatal("cas should return original value")
	}
	if binary.LittleEndian.Uint64(remote.Bytes()) != 99 {
		t.Fatal("cas should have swapped")
	}

	// Failed compare leaves the value and returns the current one.
	if err := p.qpA.PostSend(SendWR{
		Op: OpCompareSwap, Signaled: true, Compare: 42, Swap: 1,
		Local:  Segment{MR: local, Length: 8},
		Remote: RemoteSegment{RKey: remote.RKey()},
	}); err != nil {
		t.Fatal(err)
	}
	if c := p.scqA.Wait(); c.Status != StatusSuccess {
		t.Fatalf("cas failed: %+v", c)
	}
	if binary.LittleEndian.Uint64(local.Bytes()) != 99 {
		t.Fatal("failed cas should return current value")
	}
	if binary.LittleEndian.Uint64(remote.Bytes()) != 99 {
		t.Fatal("failed cas must not modify the target")
	}
}

func TestAtomicValidation(t *testing.T) {
	p, local, remote := atomicPair(t)
	noAtomic := mustMR(t, p.pdB, 8, AccessRemoteWrite)

	// Wrong local length.
	err := p.qpA.PostSend(SendWR{
		Op: OpFetchAdd, Local: Segment{MR: local, Length: 4},
		Remote: RemoteSegment{RKey: remote.RKey()},
	})
	if err != ErrBadSegment {
		t.Fatalf("short local segment: %v", err)
	}
	// Misaligned remote offset.
	err = p.qpA.PostSend(SendWR{
		Op: OpFetchAdd, Local: Segment{MR: local, Length: 8},
		Remote: RemoteSegment{RKey: remote.RKey(), Offset: 4},
	})
	if err != ErrBadSegment {
		t.Fatalf("misaligned remote: %v", err)
	}
	// Missing rkey.
	err = p.qpA.PostSend(SendWR{Op: OpFetchAdd, Local: Segment{MR: local, Length: 8}})
	if err != ErrNeedRemoteSeg {
		t.Fatalf("missing remote: %v", err)
	}
	// Target without atomic access → remote error completion.
	if err := p.qpA.PostSend(SendWR{
		Op: OpFetchAdd, Signaled: true, Add: 1,
		Local:  Segment{MR: local, Length: 8},
		Remote: RemoteSegment{RKey: noAtomic.RKey()},
	}); err != nil {
		t.Fatal(err)
	}
	if c := p.scqA.Wait(); c.Status != StatusRemoteAccessError {
		t.Fatalf("want remote access error, got %+v", c)
	}
}

func TestFetchAddConcurrentCounters(t *testing.T) {
	// Many QPs from distinct devices hammer one remote counter; the sum
	// must be exact (HCA-serialised atomics).
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	target := net.NewDevice()
	tpd := target.AllocPD()
	counter := mustMRAt(t, tpd, 8, AccessRemoteAtomic)

	const clients = 6
	const addsEach = 200
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		dev := net.NewDevice()
		pd := dev.AllocPD()
		scq := dev.NewCQ()
		qp, err := pd.CreateQP(QPConfig{SendCQ: scq, RecvCQ: dev.NewCQ()})
		if err != nil {
			t.Fatal(err)
		}
		tq, err := tpd.CreateQP(QPConfig{SendCQ: target.NewCQ(), RecvCQ: target.NewCQ()})
		if err != nil {
			t.Fatal(err)
		}
		if err := Connect(qp, tq); err != nil {
			t.Fatal(err)
		}
		local := mustMRAt(t, pd, 8, AccessLocalWrite)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < addsEach; k++ {
				if err := qp.PostSend(SendWR{
					Op: OpFetchAdd, Signaled: true, Add: uint64(id + 1),
					Local:  Segment{MR: local, Length: 8},
					Remote: RemoteSegment{RKey: counter.RKey()},
				}); err != nil {
					errs <- err
					return
				}
				if c := scq.Wait(); c.Err() != nil {
					errs <- c.Err()
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	var want uint64
	for i := 0; i < clients; i++ {
		want += uint64(i+1) * addsEach
	}
	if got := binary.LittleEndian.Uint64(counter.Bytes()); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
}

func mustMRAt(t *testing.T, pd *ProtectionDomain, n int, access Access) *MemoryRegion {
	t.Helper()
	mr, err := pd.RegisterMemory(make([]byte, n), access)
	if err != nil {
		t.Fatal(err)
	}
	return mr
}

func TestInlineSend(t *testing.T) {
	p := newTestPair(t)
	dst := mustMR(t, p.pdB, 64, AccessLocalWrite)
	if err := p.qpB.PostRecv(RecvWR{WRID: 1, Local: Segment{MR: dst, Length: 64}}); err != nil {
		t.Fatal(err)
	}
	// Inline payload from unregistered memory, mutated right after post:
	// the post-time snapshot must be what arrives.
	payload := []byte("inline payload!!")
	if err := p.qpA.PostSend(SendWR{Op: OpSend, Inline: payload, Signaled: true}); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X'
	c := p.rcqB.Wait()
	if c.Err() != nil || c.Bytes != 16 {
		t.Fatalf("bad recv: %+v", c)
	}
	if string(dst.Bytes()[:16]) != "inline payload!!" {
		t.Fatalf("inline snapshot violated: %q", dst.Bytes()[:16])
	}
	if sc := p.scqA.Wait(); sc.Bytes != 16 {
		t.Fatalf("send completion bytes = %d", sc.Bytes)
	}
}

func TestInlineWrite(t *testing.T) {
	p := newTestPair(t)
	dst := mustMR(t, p.pdB, 64, AccessRemoteWrite)
	if err := p.qpA.PostSend(SendWR{
		Op: OpWrite, Inline: []byte{1, 2, 3, 4}, Signaled: true,
		Remote: RemoteSegment{RKey: dst.RKey(), Offset: 10},
	}); err != nil {
		t.Fatal(err)
	}
	if c := p.scqA.Wait(); c.Err() != nil {
		t.Fatal(c.Err())
	}
	for i, want := range []byte{1, 2, 3, 4} {
		if dst.Bytes()[10+i] != want {
			t.Fatal("inline write payload mismatch")
		}
	}
}

func TestInlineValidation(t *testing.T) {
	p := newTestPair(t)
	if err := p.qpA.PostSend(SendWR{Op: OpSend, Inline: make([]byte, MaxInline+1)}); err == nil {
		t.Fatal("oversized inline should fail")
	}
	if err := p.qpA.PostSend(SendWR{Op: OpRead, Inline: []byte{1}}); err == nil {
		t.Fatal("inline READ should fail")
	}
	if err := p.qpA.PostSend(SendWR{Op: OpWrite, Inline: []byte{1}}); err != ErrNeedRemoteSeg {
		t.Fatalf("inline write without remote: %v", err)
	}
}

func TestSRQSharedAcrossQPs(t *testing.T) {
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	recvDev := net.NewDevice()
	rpd := recvDev.AllocPD()
	srq := rpd.CreateSRQ(16)
	rcq := recvDev.NewCQ()
	slab := mustMRAt(t, rpd, 16*64, AccessLocalWrite)
	for i := 0; i < 16; i++ {
		if err := srq.PostRecv(RecvWR{WRID: uint64(i), Local: Segment{MR: slab, Offset: i * 64, Length: 64}}); err != nil {
			t.Fatal(err)
		}
	}

	const senders = 4
	scqs := make([]*CompletionQueue, senders)
	qps := make([]*QP, senders)
	srcs := make([]*MemoryRegion, senders)
	for i := 0; i < senders; i++ {
		dev := net.NewDevice()
		pd := dev.AllocPD()
		scqs[i] = dev.NewCQ()
		qp, err := pd.CreateQP(QPConfig{SendCQ: scqs[i], RecvCQ: dev.NewCQ()})
		if err != nil {
			t.Fatal(err)
		}
		rqp, err := rpd.CreateQP(QPConfig{SendCQ: rcq, RecvCQ: rcq, SRQ: srq})
		if err != nil {
			t.Fatal(err)
		}
		if err := Connect(qp, rqp); err != nil {
			t.Fatal(err)
		}
		qps[i] = qp
		srcs[i] = mustMRAt(t, pd, 64, 0)
	}
	// A QP with an SRQ must reject direct PostRecv.
	srqQP, err := rpd.CreateQP(QPConfig{SendCQ: rcq, RecvCQ: rcq, SRQ: srq})
	if err != nil {
		t.Fatal(err)
	}
	if err := srqQP.PostRecv(RecvWR{Local: Segment{MR: slab, Length: 64}}); err == nil {
		t.Fatal("PostRecv on SRQ-backed QP should fail")
	}

	// Each sender ships 3 messages; all 12 consume SRQ buffers.
	for i, qp := range qps {
		for k := 0; k < 3; k++ {
			srcs[i].Bytes()[0] = byte(i)
			if err := qp.PostSend(SendWR{Op: OpSend, Signaled: true, Local: Segment{MR: srcs[i], Length: 64}}); err != nil {
				t.Fatal(err)
			}
			if c := scqs[i].Wait(); c.Err() != nil {
				t.Fatal(c.Err())
			}
		}
	}
	seen := make(map[uint64]bool)
	for i := 0; i < senders*3; i++ {
		c := rcq.Wait()
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		if seen[c.WRID] {
			t.Fatalf("SRQ buffer %d consumed twice without repost", c.WRID)
		}
		seen[c.WRID] = true
	}
	if srq.RNRWaits() != 0 {
		t.Fatalf("unexpected SRQ RNR waits: %d", srq.RNRWaits())
	}
}

func TestSRQValidation(t *testing.T) {
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	devA, devB := net.NewDevice(), net.NewDevice()
	pdA, pdB := devA.AllocPD(), devB.AllocPD()
	srq := pdA.CreateSRQ(2)
	// Cross-PD QP creation with foreign SRQ fails.
	if _, err := pdB.CreateQP(QPConfig{SendCQ: devB.NewCQ(), RecvCQ: devB.NewCQ(), SRQ: srq}); err != ErrWrongPD {
		t.Fatalf("cross-PD SRQ: %v", err)
	}
	mrB := mustMRAt(t, pdB, 16, AccessLocalWrite)
	if err := srq.PostRecv(RecvWR{Local: Segment{MR: mrB, Length: 16}}); err != ErrWrongPD {
		t.Fatalf("cross-PD post: %v", err)
	}
	if err := srq.PostRecv(RecvWR{}); err == nil {
		t.Fatal("nil MR should fail")
	}
	mrA := mustMRAt(t, pdA, 16, AccessLocalWrite)
	if err := srq.PostRecv(RecvWR{Local: Segment{MR: mrA, Length: 16}}); err != nil {
		t.Fatal(err)
	}
	if err := srq.PostRecv(RecvWR{Local: Segment{MR: mrA, Length: 16}}); err != nil {
		t.Fatal(err)
	}
	if err := srq.PostRecv(RecvWR{Local: Segment{MR: mrA, Length: 16}}); err != ErrRQFull {
		t.Fatalf("full SRQ: %v", err)
	}
	srq.Close()
	if err := srq.PostRecv(RecvWR{Local: Segment{MR: mrA, Length: 16}}); err != ErrClosed {
		t.Fatalf("closed SRQ: %v", err)
	}
}

// Property: a sequence of fetch-adds with arbitrary addends accumulates
// exactly and each returns the running prefix sum.
func TestPropertyFetchAddPrefixSums(t *testing.T) {
	p, local, remote := atomicPair(t)
	f := func(addends []uint8) bool {
		binary.LittleEndian.PutUint64(remote.Bytes(), 0)
		var sum uint64
		for _, a := range addends {
			err := p.qpA.PostSend(SendWR{
				Op: OpFetchAdd, Signaled: true, Add: uint64(a),
				Local:  Segment{MR: local, Length: 8},
				Remote: RemoteSegment{RKey: remote.RKey()},
			})
			if err != nil {
				return false
			}
			if c := p.scqA.Wait(); c.Err() != nil {
				return false
			}
			if binary.LittleEndian.Uint64(local.Bytes()) != sum {
				return false
			}
			sum += uint64(a)
		}
		return binary.LittleEndian.Uint64(remote.Bytes()) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
