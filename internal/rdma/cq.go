package rdma

import (
	"sync"
	"time"

	"rackjoin/internal/metrics"
)

// CompletionQueue collects completions of work requests. Multiple queue
// pairs may share one CQ; completions carry the QPN of their origin.
//
// The queue is unbounded: applications bound outstanding work at the queue
// pair (send queue depth, number of posted receives), mirroring how verbs
// applications size their CQs to the sum of attached queue depths.
type CompletionQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Completion
	// waitHist records how long blocking Wait calls spent waiting for a
	// completion — the poll-latency view of whether consumers outrun the
	// network (set by Device.NewCQ, nil-safe).
	waitHist *metrics.Histogram
}

// Poll moves up to len(dst) completions into dst without blocking and
// returns how many were written.
func (cq *CompletionQueue) Poll(dst []Completion) int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	n := copy(dst, cq.queue)
	cq.queue = cq.queue[n:]
	if len(cq.queue) == 0 {
		cq.queue = nil
	}
	return n
}

// Wait blocks until at least one completion is available and returns it.
func (cq *CompletionQueue) Wait() Completion {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if len(cq.queue) == 0 {
		start := time.Now()
		for len(cq.queue) == 0 {
			cq.cond.Wait()
		}
		cq.waitHist.ObserveSince(start)
	}
	c := cq.queue[0]
	cq.queue = cq.queue[1:]
	if len(cq.queue) == 0 {
		cq.queue = nil
	}
	return c
}

// Len returns the number of pending completions.
func (cq *CompletionQueue) Len() int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return len(cq.queue)
}

func (cq *CompletionQueue) push(c Completion) {
	cq.mu.Lock()
	cq.queue = append(cq.queue, c)
	cq.mu.Unlock()
	cq.cond.Signal()
}
