package rdma

import "sync"

// CompletionQueue collects completions of work requests. Multiple queue
// pairs may share one CQ; completions carry the QPN of their origin.
//
// The queue is unbounded: applications bound outstanding work at the queue
// pair (send queue depth, number of posted receives), mirroring how verbs
// applications size their CQs to the sum of attached queue depths.
type CompletionQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Completion
}

// Poll moves up to len(dst) completions into dst without blocking and
// returns how many were written.
func (cq *CompletionQueue) Poll(dst []Completion) int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	n := copy(dst, cq.queue)
	cq.queue = cq.queue[n:]
	if len(cq.queue) == 0 {
		cq.queue = nil
	}
	return n
}

// Wait blocks until at least one completion is available and returns it.
func (cq *CompletionQueue) Wait() Completion {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	for len(cq.queue) == 0 {
		cq.cond.Wait()
	}
	c := cq.queue[0]
	cq.queue = cq.queue[1:]
	if len(cq.queue) == 0 {
		cq.queue = nil
	}
	return c
}

// Len returns the number of pending completions.
func (cq *CompletionQueue) Len() int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return len(cq.queue)
}

func (cq *CompletionQueue) push(c Completion) {
	cq.mu.Lock()
	cq.queue = append(cq.queue, c)
	cq.mu.Unlock()
	cq.cond.Signal()
}
