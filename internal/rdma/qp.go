package rdma

import (
	"fmt"
	"sync"
	"time"
)

// Opcode identifies the RDMA operation of a work request or completion.
type Opcode uint8

const (
	// OpSend transfers a local segment into a receive posted by the peer
	// (two-sided, channel semantics).
	OpSend Opcode = iota
	// OpWrite places a local segment into peer memory at an explicit
	// remote segment (one-sided, memory semantics). No peer completion.
	OpWrite
	// OpWriteImm is OpWrite plus an immediate value; it consumes a posted
	// receive at the peer and generates a receive completion carrying the
	// immediate, signalling that the written data is visible.
	OpWriteImm
	// OpRead fetches a remote segment into local memory (one-sided).
	OpRead
	// OpRecv appears only in completions: a receive consumed by an
	// incoming OpSend or OpWriteImm.
	OpRecv
)

// String implements fmt.Stringer.
func (op Opcode) String() string {
	switch op {
	case OpSend:
		return "SEND"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpRead:
		return "READ"
	case OpRecv:
		return "RECV"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpCompareSwap:
		return "CMP_SWAP"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(op))
	}
}

// Status is the completion status of a work request.
type Status uint8

const (
	// StatusSuccess indicates the operation completed.
	StatusSuccess Status = iota
	// StatusLocalProtectionError indicates the local segment was invalid
	// or its memory region deregistered before transmission.
	StatusLocalProtectionError
	// StatusRemoteAccessError indicates the remote key was unknown, the
	// remote segment out of bounds, or access flags forbade the operation.
	StatusRemoteAccessError
	// StatusRecvBufferTooSmall indicates an incoming message exceeded the
	// posted receive buffer.
	StatusRecvBufferTooSmall
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusLocalProtectionError:
		return "local protection error"
	case StatusRemoteAccessError:
		return "remote access error"
	case StatusRecvBufferTooSmall:
		return "receive buffer too small"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// SendWR is a work request posted to the send queue of a QP.
type SendWR struct {
	// WRID is an opaque application identifier echoed in the completion.
	WRID uint64
	// Op selects the operation (OpSend, OpWrite, OpWriteImm, OpRead).
	Op Opcode
	// Local is the local scatter/gather segment (source for SEND/WRITE,
	// destination for READ).
	Local Segment
	// Remote addresses peer memory for WRITE/WRITE_IMM/READ.
	Remote RemoteSegment
	// Imm is delivered to the peer for OpWriteImm (and OpSend if HasImm).
	Imm    uint32
	HasImm bool
	// Add is the addend of OpFetchAdd; Compare/Swap parameterise
	// OpCompareSwap. The 8-byte original remote value is written into the
	// local segment.
	Add     uint64
	Compare uint64
	Swap    uint64
	// Inline, when non-nil, is used as the payload of OpSend/OpWrite
	// instead of the local segment: the bytes are snapshotted at post
	// time (IBV_SEND_INLINE), so the source may be reused immediately and
	// no registered memory region is required on the sender.
	Inline []byte
	// Signaled requests a completion on the send CQ even on success.
	// Error completions are always delivered.
	Signaled bool
}

// RecvWR is a work request posted to the receive queue of a QP.
type RecvWR struct {
	WRID  uint64
	Local Segment
}

// Completion reports the outcome of a work request.
type Completion struct {
	WRID   uint64
	Status Status
	Op     Opcode
	// Bytes is the payload length transferred.
	Bytes int
	// Imm carries the immediate value for OpRecv completions when HasImm.
	Imm    uint32
	HasImm bool
	// QPN is the local queue pair number the completion belongs to.
	QPN uint32
}

// Err converts an unsuccessful completion into an error, nil on success.
func (c Completion) Err() error {
	if c.Status == StatusSuccess {
		return nil
	}
	return fmt.Errorf("rdma: %s wr=%d failed: %s", c.Op, c.WRID, c.Status)
}

// QP is a reliable-connected queue pair. Work requests posted to the send
// queue execute asynchronously, in order, against the connected peer.
type QP struct {
	dev    *Device
	pd     *ProtectionDomain
	qpn    uint32
	depth  int
	sendCQ *CompletionQueue
	recvCQ *CompletionQueue

	srq *SRQ // when non-nil, receives come from the shared queue

	mu          sync.Mutex
	recvCond    *sync.Cond
	recvs       []RecvWR
	outstanding int
	remote      *QP
	closed      bool
}

// QPConfig configures queue pair creation.
type QPConfig struct {
	// SendCQ receives completions of posted send work requests.
	SendCQ *CompletionQueue
	// RecvCQ receives completions of consumed receives.
	RecvCQ *CompletionQueue
	// Depth bounds outstanding send work requests and posted receives.
	// Zero means DefaultQueueDepth.
	Depth int
	// SRQ, when non-nil, makes incoming SEND/WRITE_IMM operations consume
	// receives from the shared queue instead of the per-QP ring; PostRecv
	// on the queue pair is then invalid.
	SRQ *SRQ
}

// CreateQP creates a queue pair in the protection domain. Both completion
// queues are required.
func (pd *ProtectionDomain) CreateQP(cfg QPConfig) (*QP, error) {
	if cfg.SendCQ == nil || cfg.RecvCQ == nil {
		return nil, fmt.Errorf("rdma: CreateQP requires send and receive CQs")
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	if cfg.SRQ != nil && cfg.SRQ.pd != pd {
		return nil, ErrWrongPD
	}
	qp := &QP{dev: pd.dev, pd: pd, depth: depth, sendCQ: cfg.SendCQ, recvCQ: cfg.RecvCQ, srq: cfg.SRQ}
	qp.recvCond = sync.NewCond(&qp.mu)
	pd.dev.addQP(qp)
	return qp, nil
}

// QPN returns the queue pair number, unique per device.
func (qp *QP) QPN() uint32 { return qp.qpn }

// Device returns the owning device.
func (qp *QP) Device() *Device { return qp.dev }

// Connect transitions two queue pairs into the connected state with each
// other. Both must be unconnected and live on the same network.
func Connect(a, b *QP) error {
	if a == nil || b == nil {
		return fmt.Errorf("rdma: Connect requires two queue pairs")
	}
	if a == b {
		return fmt.Errorf("rdma: cannot connect a queue pair to itself")
	}
	if a.dev.net != b.dev.net {
		return fmt.Errorf("rdma: queue pairs on different networks")
	}
	// Lock in deterministic order to avoid deadlock.
	first, second := a, b
	if first.dev.id > second.dev.id || (first.dev.id == second.dev.id && first.qpn > second.qpn) {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock() //rackvet:ignore lockorder distinct instances, ordered by (dev.id, qpn) above; a==b rejected on entry
	defer second.mu.Unlock()
	if a.remote != nil || b.remote != nil {
		return fmt.Errorf("rdma: queue pair already connected")
	}
	a.remote = b
	b.remote = a
	return nil
}

// Remote returns the connected peer queue pair, or nil.
func (qp *QP) Remote() *QP {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.remote
}

// PostRecv posts a receive buffer. Receives are consumed in FIFO order by
// incoming SEND and WRITE_IMM operations.
func (qp *QP) PostRecv(wr RecvWR) error {
	if qp.srq != nil {
		return fmt.Errorf("rdma: queue pair uses a shared receive queue; post to the SRQ")
	}
	if wr.Local.MR == nil {
		return fmt.Errorf("rdma: receive requires a memory region")
	}
	if wr.Local.MR.pd != qp.pd {
		return ErrWrongPD
	}
	if _, err := wr.Local.MR.slice(wr.Local.Offset, wr.Local.Length); err != nil {
		return err
	}
	if wr.Local.MR.access&AccessLocalWrite == 0 {
		return ErrAccessDenied
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if qp.closed {
		return ErrClosed
	}
	if len(qp.recvs) >= qp.depth {
		return ErrRQFull
	}
	qp.recvs = append(qp.recvs, wr)
	qp.recvCond.Signal()
	return nil
}

// popRecv removes the oldest posted receive, blocking until one is posted
// (receiver-not-ready back-pressure, counted in device stats). It runs on
// the delivery lane goroutine of the receiving device.
func (qp *QP) popRecv() (RecvWR, bool) {
	if qp.srq != nil {
		return qp.srq.pop()
	}
	qp.mu.Lock()
	defer qp.mu.Unlock()
	var waitStart time.Time
	for len(qp.recvs) == 0 && !qp.closed {
		if waitStart.IsZero() {
			waitStart = time.Now()
			qp.dev.m.rnrWaits.Inc()
		}
		qp.recvCond.Wait()
	}
	if !waitStart.IsZero() {
		qp.dev.m.rnrWait.ObserveSince(waitStart)
	}
	if len(qp.recvs) == 0 {
		return RecvWR{}, false
	}
	wr := qp.recvs[0]
	qp.recvs = qp.recvs[1:]
	return wr, true
}

// Close marks the queue pair closed. Blocked incoming SENDs are released
// and complete with an error at the sender.
func (qp *QP) Close() {
	qp.mu.Lock()
	qp.closed = true
	qp.mu.Unlock()
	qp.recvCond.Broadcast()
}

// PostSend posts a work request to the send queue. The request executes
// asynchronously; its outcome is reported on the send CQ (always for
// errors, and for successes when wr.Signaled is set).
//
// The local segment must not be modified (SEND/WRITE) or read (READ)
// until the request completes — the transfer reads/writes the live buffer
// just like a real HCA performing DMA.
func (qp *QP) PostSend(wr SendWR) error {
	if err := qp.validateSend(&wr); err != nil {
		return err
	}
	qp.mu.Lock()
	if qp.closed {
		qp.mu.Unlock()
		return ErrClosed
	}
	remote := qp.remote
	if remote == nil {
		qp.mu.Unlock()
		return ErrNotConnected
	}
	if qp.outstanding >= qp.depth {
		qp.mu.Unlock()
		return ErrQPFull
	}
	qp.outstanding++
	qp.mu.Unlock()

	wireSize := wr.Local.Length
	if wr.Inline != nil {
		// Snapshot inline payload now: post-time copy semantics.
		snap := make([]byte, len(wr.Inline))
		copy(snap, wr.Inline)
		wr.Inline = snap
		wireSize = len(snap)
	}
	switch wr.Op {
	case OpRead:
		wireSize = 0 // request is small; the response carries the data
	case OpFetchAdd, OpCompareSwap:
		wireSize = 8
	}
	err := qp.dev.node.Post(remote.dev.node.ID(), wireSize, func() {
		qp.execute(wr, remote)
	})
	if err != nil {
		qp.mu.Lock()
		qp.outstanding--
		qp.mu.Unlock()
		return err
	}
	switch wr.Op {
	case OpSend:
		qp.dev.m.sends.Inc()
		qp.dev.m.bytesSent.Add(uint64(wr.Local.Length))
	case OpWrite, OpWriteImm:
		qp.dev.m.writes.Inc()
		qp.dev.m.bytesSent.Add(uint64(wr.Local.Length))
	case OpRead:
		qp.dev.m.reads.Inc()
	}
	if h := qp.dev.hook.Load(); h != nil {
		(*h)(wr.Op, wireSize)
	}
	return nil
}

func (qp *QP) validateSend(wr *SendWR) error {
	switch wr.Op {
	case OpSend, OpWrite, OpWriteImm, OpRead:
	case OpFetchAdd, OpCompareSwap:
	default:
		return fmt.Errorf("rdma: invalid send opcode %v", wr.Op)
	}
	if wr.Inline != nil {
		if wr.Op != OpSend && wr.Op != OpWrite && wr.Op != OpWriteImm {
			return fmt.Errorf("rdma: inline payload only valid for SEND/WRITE")
		}
		if len(wr.Inline) > MaxInline {
			return fmt.Errorf("rdma: inline payload of %d bytes exceeds MaxInline %d", len(wr.Inline), MaxInline)
		}
		if wr.Op != OpSend && wr.Remote.RKey == 0 {
			return ErrNeedRemoteSeg
		}
		return nil
	}
	if wr.Local.MR == nil {
		return fmt.Errorf("rdma: work request requires a local memory region")
	}
	if wr.Local.MR.pd != qp.pd {
		return ErrWrongPD
	}
	if _, err := wr.Local.MR.slice(wr.Local.Offset, wr.Local.Length); err != nil {
		return err
	}
	if wr.Op == OpRead && wr.Local.MR.access&AccessLocalWrite == 0 {
		return ErrAccessDenied
	}
	if wr.Op == OpFetchAdd || wr.Op == OpCompareSwap {
		return qp.validateAtomic(wr)
	}
	if wr.Op != OpSend && wr.Remote.RKey == 0 {
		return ErrNeedRemoteSeg
	}
	return nil
}

// execute runs on the delivery lane goroutine at the destination device
// (the "remote HCA"). dst is the connected peer queue pair.
func (qp *QP) execute(wr SendWR, dst *QP) {
	switch wr.Op {
	case OpSend:
		qp.executeSend(wr, dst)
	case OpWrite, OpWriteImm:
		qp.executeWrite(wr, dst)
	case OpRead:
		qp.executeRead(wr, dst)
	case OpFetchAdd, OpCompareSwap:
		qp.executeAtomic(wr, dst)
	}
}

func (qp *QP) completeSendSide(wr SendWR, status Status) {
	qp.mu.Lock()
	qp.outstanding--
	qp.mu.Unlock()
	if status != StatusSuccess || wr.Signaled {
		n := wr.Local.Length
		if wr.Inline != nil {
			n = len(wr.Inline)
		}
		qp.sendCQ.push(Completion{
			WRID: wr.WRID, Status: status, Op: wr.Op,
			Bytes: n, QPN: qp.qpn,
		})
	}
}

func (qp *QP) executeSend(wr SendWR, dst *QP) {
	src := wr.Inline
	if src == nil {
		var err error
		src, err = wr.Local.MR.slice(wr.Local.Offset, wr.Local.Length)
		if err != nil {
			qp.completeSendSide(wr, StatusLocalProtectionError)
			return
		}
	}
	rwr, ok := dst.popRecv()
	if !ok { // peer closed
		qp.completeSendSide(wr, StatusRemoteAccessError)
		return
	}
	dstBuf, err := rwr.Local.MR.slice(rwr.Local.Offset, rwr.Local.Length)
	if err != nil {
		dst.recvCQ.push(Completion{WRID: rwr.WRID, Status: StatusLocalProtectionError, Op: OpRecv, QPN: dst.qpn})
		qp.completeSendSide(wr, StatusRemoteAccessError)
		return
	}
	if len(dstBuf) < len(src) {
		dst.recvCQ.push(Completion{WRID: rwr.WRID, Status: StatusRecvBufferTooSmall, Op: OpRecv, QPN: dst.qpn})
		qp.completeSendSide(wr, StatusRemoteAccessError)
		return
	}
	copy(dstBuf, src)
	dst.dev.m.recvs.Inc()
	dst.dev.m.bytesReceived.Add(uint64(len(src)))
	dst.recvCQ.push(Completion{
		WRID: rwr.WRID, Status: StatusSuccess, Op: OpRecv,
		Bytes: len(src), Imm: wr.Imm, HasImm: wr.HasImm, QPN: dst.qpn,
	})
	qp.completeSendSide(wr, StatusSuccess)
}

func (qp *QP) executeWrite(wr SendWR, dst *QP) {
	src := wr.Inline
	if src == nil {
		var err error
		src, err = wr.Local.MR.slice(wr.Local.Offset, wr.Local.Length)
		if err != nil {
			qp.completeSendSide(wr, StatusLocalProtectionError)
			return
		}
	}
	mr := dst.dev.lookupMR(wr.Remote.RKey)
	if mr == nil || mr.access&AccessRemoteWrite == 0 {
		qp.completeSendSide(wr, StatusRemoteAccessError)
		return
	}
	dstBuf, err := mr.slice(wr.Remote.Offset, len(src))
	if err != nil {
		qp.completeSendSide(wr, StatusRemoteAccessError)
		return
	}
	copy(dstBuf, src)
	dst.dev.m.bytesReceived.Add(uint64(len(src)))
	if wr.Op == OpWriteImm {
		rwr, ok := dst.popRecv()
		if !ok {
			qp.completeSendSide(wr, StatusRemoteAccessError)
			return
		}
		dst.dev.m.recvs.Inc()
		dst.recvCQ.push(Completion{
			WRID: rwr.WRID, Status: StatusSuccess, Op: OpRecv,
			Bytes: len(src), Imm: wr.Imm, HasImm: true, QPN: dst.qpn,
		})
	}
	qp.completeSendSide(wr, StatusSuccess)
}

// executeRead runs at the remote device: it snapshots the remote segment
// and ships it back over the fabric into the local segment, so that READ
// response bytes are charged to the remote's egress like on real hardware.
func (qp *QP) executeRead(wr SendWR, dst *QP) {
	mr := dst.dev.lookupMR(wr.Remote.RKey)
	if mr == nil || mr.access&AccessRemoteRead == 0 {
		qp.completeSendSide(wr, StatusRemoteAccessError)
		return
	}
	remoteBuf, err := mr.slice(wr.Remote.Offset, wr.Local.Length)
	if err != nil {
		qp.completeSendSide(wr, StatusRemoteAccessError)
		return
	}
	snapshot := make([]byte, len(remoteBuf))
	copy(snapshot, remoteBuf)
	dst.dev.m.bytesSent.Add(uint64(len(snapshot)))
	err = dst.dev.node.Post(qp.dev.node.ID(), len(snapshot), func() {
		local, err := wr.Local.MR.slice(wr.Local.Offset, wr.Local.Length)
		if err != nil {
			qp.completeSendSide(wr, StatusLocalProtectionError)
			return
		}
		copy(local, snapshot)
		qp.dev.m.bytesReceived.Add(uint64(len(snapshot)))
		qp.completeSendSide(wr, StatusSuccess)
	})
	if err != nil {
		qp.completeSendSide(wr, StatusRemoteAccessError)
	}
}
