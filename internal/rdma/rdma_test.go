package rdma

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"rackjoin/internal/fabric"
)

// pair builds two connected QPs on two fresh devices and returns everything
// a test needs.
type testPair struct {
	net      *Network
	devA     *Device
	devB     *Device
	pdA, pdB *ProtectionDomain
	qpA, qpB *QP
	scqA     *CompletionQueue
	rcqA     *CompletionQueue
	scqB     *CompletionQueue
	rcqB     *CompletionQueue
}

func newTestPair(t *testing.T) *testPair {
	t.Helper()
	net := NewNetwork(fabric.Config{})
	t.Cleanup(net.Close)
	devA := net.NewDevice()
	devB := net.NewDevice()
	pdA := devA.AllocPD()
	pdB := devB.AllocPD()
	p := &testPair{
		net: net, devA: devA, devB: devB, pdA: pdA, pdB: pdB,
		scqA: devA.NewCQ(), rcqA: devA.NewCQ(),
		scqB: devB.NewCQ(), rcqB: devB.NewCQ(),
	}
	var err error
	p.qpA, err = pdA.CreateQP(QPConfig{SendCQ: p.scqA, RecvCQ: p.rcqA})
	if err != nil {
		t.Fatalf("CreateQP A: %v", err)
	}
	p.qpB, err = pdB.CreateQP(QPConfig{SendCQ: p.scqB, RecvCQ: p.rcqB})
	if err != nil {
		t.Fatalf("CreateQP B: %v", err)
	}
	if err := Connect(p.qpA, p.qpB); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return p
}

func mustMR(t *testing.T, pd *ProtectionDomain, n int, access Access) *MemoryRegion {
	t.Helper()
	mr, err := pd.RegisterMemory(make([]byte, n), access)
	if err != nil {
		t.Fatalf("RegisterMemory: %v", err)
	}
	return mr
}

func TestSendRecvRoundtrip(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 1024, 0)
	dst := mustMR(t, p.pdB, 1024, AccessLocalWrite)
	copy(src.Bytes(), []byte("hello rdma world"))

	if err := p.qpB.PostRecv(RecvWR{WRID: 7, Local: Segment{MR: dst, Length: 1024}}); err != nil {
		t.Fatalf("PostRecv: %v", err)
	}
	if err := p.qpA.PostSend(SendWR{WRID: 3, Op: OpSend, Local: Segment{MR: src, Length: 16}, Signaled: true}); err != nil {
		t.Fatalf("PostSend: %v", err)
	}
	sc := p.scqA.Wait()
	if sc.Status != StatusSuccess || sc.WRID != 3 || sc.Op != OpSend {
		t.Fatalf("bad send completion: %+v", sc)
	}
	rc := p.rcqB.Wait()
	if rc.Status != StatusSuccess || rc.WRID != 7 || rc.Op != OpRecv || rc.Bytes != 16 {
		t.Fatalf("bad recv completion: %+v", rc)
	}
	if string(dst.Bytes()[:16]) != "hello rdma world" {
		t.Fatalf("payload mismatch: %q", dst.Bytes()[:16])
	}
}

func TestSendWithImmediate(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 64, 0)
	dst := mustMR(t, p.pdB, 64, AccessLocalWrite)
	if err := p.qpB.PostRecv(RecvWR{WRID: 1, Local: Segment{MR: dst, Length: 64}}); err != nil {
		t.Fatal(err)
	}
	if err := p.qpA.PostSend(SendWR{Op: OpSend, Local: Segment{MR: src, Length: 8}, Imm: 0xBEEF, HasImm: true}); err != nil {
		t.Fatal(err)
	}
	rc := p.rcqB.Wait()
	if !rc.HasImm || rc.Imm != 0xBEEF {
		t.Fatalf("immediate not delivered: %+v", rc)
	}
}

func TestOneSidedWrite(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 256, 0)
	dst := mustMR(t, p.pdB, 256, AccessRemoteWrite)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i)
	}
	wr := SendWR{
		WRID: 11, Op: OpWrite, Signaled: true,
		Local:  Segment{MR: src, Offset: 16, Length: 100},
		Remote: RemoteSegment{RKey: dst.RKey(), Offset: 50},
	}
	if err := p.qpA.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	c := p.scqA.Wait()
	if c.Status != StatusSuccess || c.Op != OpWrite {
		t.Fatalf("bad completion: %+v", c)
	}
	if !bytes.Equal(dst.Bytes()[50:150], src.Bytes()[16:116]) {
		t.Fatal("one-sided write payload mismatch")
	}
	// No remote completion should exist.
	if p.rcqB.Len() != 0 {
		t.Fatal("one-sided write generated a remote completion")
	}
}

func TestWriteWithImmediateConsumesReceive(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 128, 0)
	dst := mustMR(t, p.pdB, 128, AccessRemoteWrite)
	notif := mustMR(t, p.pdB, 16, AccessLocalWrite)
	if err := p.qpB.PostRecv(RecvWR{WRID: 21, Local: Segment{MR: notif, Length: 16}}); err != nil {
		t.Fatal(err)
	}
	wr := SendWR{
		Op: OpWriteImm, Imm: 42,
		Local:  Segment{MR: src, Length: 128},
		Remote: RemoteSegment{RKey: dst.RKey()},
	}
	if err := p.qpA.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	rc := p.rcqB.Wait()
	if rc.WRID != 21 || !rc.HasImm || rc.Imm != 42 || rc.Bytes != 128 {
		t.Fatalf("bad write-imm completion: %+v", rc)
	}
}

func TestOneSidedRead(t *testing.T) {
	p := newTestPair(t)
	local := mustMR(t, p.pdA, 64, AccessLocalWrite)
	remote := mustMR(t, p.pdB, 64, AccessRemoteRead)
	copy(remote.Bytes(), []byte("remote data here"))
	wr := SendWR{
		WRID: 5, Op: OpRead, Signaled: true,
		Local:  Segment{MR: local, Length: 16},
		Remote: RemoteSegment{RKey: remote.RKey()},
	}
	if err := p.qpA.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	c := p.scqA.Wait()
	if c.Status != StatusSuccess || c.Op != OpRead {
		t.Fatalf("bad completion: %+v", c)
	}
	if string(local.Bytes()[:16]) != "remote data here" {
		t.Fatalf("read payload mismatch: %q", local.Bytes()[:16])
	}
}

func TestWriteBadRKeyFails(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 64, 0)
	wr := SendWR{
		Op: OpWrite, Local: Segment{MR: src, Length: 64},
		Remote: RemoteSegment{RKey: 9999},
	}
	if err := p.qpA.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	c := p.scqA.Wait() // error completions are always delivered
	if c.Status != StatusRemoteAccessError {
		t.Fatalf("want remote access error, got %+v", c)
	}
	if c.Err() == nil {
		t.Fatal("Err() should be non-nil for failed completion")
	}
}

func TestWriteOutOfBoundsFails(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 128, 0)
	dst := mustMR(t, p.pdB, 64, AccessRemoteWrite)
	wr := SendWR{
		Op: OpWrite, Local: Segment{MR: src, Length: 128},
		Remote: RemoteSegment{RKey: dst.RKey()},
	}
	if err := p.qpA.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	if c := p.scqA.Wait(); c.Status != StatusRemoteAccessError {
		t.Fatalf("want remote access error, got %+v", c)
	}
}

func TestWriteWithoutRemoteWriteAccessFails(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 16, 0)
	dst := mustMR(t, p.pdB, 16, AccessRemoteRead) // no remote write
	wr := SendWR{
		Op: OpWrite, Local: Segment{MR: src, Length: 16},
		Remote: RemoteSegment{RKey: dst.RKey()},
	}
	if err := p.qpA.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	if c := p.scqA.Wait(); c.Status != StatusRemoteAccessError {
		t.Fatalf("want remote access error, got %+v", c)
	}
}

func TestReadWithoutRemoteReadAccessFails(t *testing.T) {
	p := newTestPair(t)
	local := mustMR(t, p.pdA, 16, AccessLocalWrite)
	remote := mustMR(t, p.pdB, 16, AccessRemoteWrite) // no remote read
	wr := SendWR{
		Op: OpRead, Local: Segment{MR: local, Length: 16},
		Remote: RemoteSegment{RKey: remote.RKey()},
	}
	if err := p.qpA.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	if c := p.scqA.Wait(); c.Status != StatusRemoteAccessError {
		t.Fatalf("want remote access error, got %+v", c)
	}
}

func TestRecvBufferTooSmall(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 128, 0)
	dst := mustMR(t, p.pdB, 16, AccessLocalWrite)
	if err := p.qpB.PostRecv(RecvWR{WRID: 1, Local: Segment{MR: dst, Length: 16}}); err != nil {
		t.Fatal(err)
	}
	if err := p.qpA.PostSend(SendWR{Op: OpSend, Local: Segment{MR: src, Length: 128}}); err != nil {
		t.Fatal(err)
	}
	if c := p.rcqB.Wait(); c.Status != StatusRecvBufferTooSmall {
		t.Fatalf("want recv-too-small at receiver, got %+v", c)
	}
	if c := p.scqA.Wait(); c.Status != StatusRemoteAccessError {
		t.Fatalf("want error at sender, got %+v", c)
	}
}

func TestPostSendValidation(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 16, 0)
	otherPDMR := mustMR(t, p.pdB, 16, 0)

	cases := []struct {
		name string
		wr   SendWR
		want error
	}{
		{"nil MR", SendWR{Op: OpSend}, nil /* any error */},
		{"wrong PD", SendWR{Op: OpSend, Local: Segment{MR: otherPDMR, Length: 16}}, ErrWrongPD},
		{"out of bounds", SendWR{Op: OpSend, Local: Segment{MR: src, Offset: 8, Length: 16}}, ErrBadSegment},
		{"negative", SendWR{Op: OpSend, Local: Segment{MR: src, Offset: -1, Length: 4}}, ErrBadSegment},
		{"write without remote", SendWR{Op: OpWrite, Local: Segment{MR: src, Length: 16}}, ErrNeedRemoteSeg},
		{"bad opcode", SendWR{Op: OpRecv, Local: Segment{MR: src, Length: 16}}, nil},
	}
	for _, tc := range cases {
		err := p.qpA.PostSend(tc.wr)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if tc.want != nil && err != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestSendQueueDepthLimit(t *testing.T) {
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	devA, devB := net.NewDevice(), net.NewDevice()
	pdA, pdB := devA.AllocPD(), devB.AllocPD()
	scq, rcq := devA.NewCQ(), devA.NewCQ()
	qpA, _ := pdA.CreateQP(QPConfig{SendCQ: scq, RecvCQ: rcq, Depth: 2})
	qpB, _ := pdB.CreateQP(QPConfig{SendCQ: devB.NewCQ(), RecvCQ: devB.NewCQ(), Depth: 2})
	if err := Connect(qpA, qpB); err != nil {
		t.Fatal(err)
	}
	src := mustMR(t, pdA, 16, 0)
	// SENDs with no posted receive park at the receiver, keeping the send
	// queue occupied; the third post must fail with ErrQPFull.
	for i := 0; i < 2; i++ {
		if err := qpA.PostSend(SendWR{Op: OpSend, Local: Segment{MR: src, Length: 16}}); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		err := qpA.PostSend(SendWR{Op: OpSend, Local: Segment{MR: src, Length: 16}})
		if err == ErrQPFull {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("send queue never filled")
		default:
		}
	}
	qpB.Close() // release parked sends so Close can drain
}

func TestRNRAccounting(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 16, 0)
	dst := mustMR(t, p.pdB, 16, AccessLocalWrite)
	if err := p.qpA.PostSend(SendWR{Op: OpSend, Local: Segment{MR: src, Length: 16}, Signaled: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the send arrive and park
	if err := p.qpB.PostRecv(RecvWR{Local: Segment{MR: dst, Length: 16}}); err != nil {
		t.Fatal(err)
	}
	if c := p.scqA.Wait(); c.Status != StatusSuccess {
		t.Fatalf("send failed: %+v", c)
	}
	if got := p.devB.Stats().RNRWaits; got != 1 {
		t.Fatalf("RNRWaits = %d, want 1", got)
	}
}

func TestRegistrationAccounting(t *testing.T) {
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	dev := net.NewDevice()
	pd := dev.AllocPD()
	mr, err := pd.RegisterMemory(make([]byte, 10*PageSize+1), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	if s.Registrations != 1 || s.PagesRegistered != 11 || s.PagesPinned != 11 {
		t.Fatalf("bad stats after register: %+v", s)
	}
	if err := mr.Deregister(); err != nil {
		t.Fatal(err)
	}
	s = dev.Stats()
	if s.Deregistrations != 1 || s.PagesPinned != 0 {
		t.Fatalf("bad stats after deregister: %+v", s)
	}
	if err := mr.Deregister(); err != ErrDeregistered {
		t.Fatalf("double deregister: got %v", err)
	}
	if _, err := pd.RegisterMemory(nil, 0); err == nil {
		t.Fatal("registering empty buffer should fail")
	}
}

func TestDeregisteredMRFailsInFlight(t *testing.T) {
	p := newTestPair(t)
	src := mustMR(t, p.pdA, 16, 0)
	dst := mustMR(t, p.pdB, 16, AccessRemoteWrite)
	if err := dst.Deregister(); err != nil {
		t.Fatal(err)
	}
	wr := SendWR{
		Op: OpWrite, Local: Segment{MR: src, Length: 16},
		Remote: RemoteSegment{RKey: dst.RKey()},
	}
	if err := p.qpA.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	if c := p.scqA.Wait(); c.Status != StatusRemoteAccessError {
		t.Fatalf("want remote access error, got %+v", c)
	}
}

func TestConnectErrors(t *testing.T) {
	p := newTestPair(t)
	if err := Connect(p.qpA, p.qpB); err == nil {
		t.Fatal("reconnecting should fail")
	}
	if err := Connect(p.qpA, p.qpA); err == nil {
		t.Fatal("self-connect should fail")
	}
	if err := Connect(nil, p.qpA); err == nil {
		t.Fatal("nil connect should fail")
	}
	other := NewNetwork(fabric.Config{})
	defer other.Close()
	od := other.NewDevice()
	oqp, _ := od.AllocPD().CreateQP(QPConfig{SendCQ: od.NewCQ(), RecvCQ: od.NewCQ()})
	if err := Connect(p.qpA, oqp); err == nil {
		t.Fatal("cross-network connect should fail")
	}
}

func TestUnconnectedPostSendFails(t *testing.T) {
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	dev := net.NewDevice()
	pd := dev.AllocPD()
	qp, _ := pd.CreateQP(QPConfig{SendCQ: dev.NewCQ(), RecvCQ: dev.NewCQ()})
	mr := mustMR(t, pd, 16, 0)
	if err := qp.PostSend(SendWR{Op: OpSend, Local: Segment{MR: mr, Length: 16}}); err != ErrNotConnected {
		t.Fatalf("got %v, want ErrNotConnected", err)
	}
}

func TestQPOrderingWriteThenSend(t *testing.T) {
	// RC ordering guarantee the join's one-sided mode relies on: a WRITE
	// followed by a SEND on the same QP is visible before the SEND's
	// receive completion fires.
	p := newTestPair(t)
	data := mustMR(t, p.pdA, 8, 0)
	flag := mustMR(t, p.pdA, 1, 0)
	dst := mustMR(t, p.pdB, 8, AccessRemoteWrite)
	notif := mustMR(t, p.pdB, 1, AccessLocalWrite)
	for i := 0; i < 1000; i++ {
		copy(data.Bytes(), []byte{1, 2, 3, 4, 5, 6, 7, byte(i)})
		if err := p.qpB.PostRecv(RecvWR{Local: Segment{MR: notif, Length: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := p.qpA.PostSend(SendWR{
			Op: OpWrite, Local: Segment{MR: data, Length: 8},
			Remote: RemoteSegment{RKey: dst.RKey()},
		}); err != nil {
			t.Fatal(err)
		}
		if err := p.qpA.PostSend(SendWR{Op: OpSend, Local: Segment{MR: flag, Length: 1}}); err != nil {
			t.Fatal(err)
		}
		if c := p.rcqB.Wait(); c.Status != StatusSuccess {
			t.Fatalf("notify failed: %+v", c)
		}
		if dst.Bytes()[7] != byte(i) {
			t.Fatalf("iteration %d: write not visible before send completion", i)
		}
	}
}

func TestCompletionQueuePoll(t *testing.T) {
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	cq := net.NewDevice().NewCQ()
	if n := cq.Poll(make([]Completion, 4)); n != 0 {
		t.Fatalf("empty poll returned %d", n)
	}
	for i := 0; i < 5; i++ {
		cq.push(Completion{WRID: uint64(i)})
	}
	if cq.Len() != 5 {
		t.Fatalf("Len = %d", cq.Len())
	}
	buf := make([]Completion, 3)
	if n := cq.Poll(buf); n != 3 || buf[0].WRID != 0 || buf[2].WRID != 2 {
		t.Fatalf("bad poll: n=%d %+v", n, buf)
	}
	if n := cq.Poll(buf); n != 2 || buf[0].WRID != 3 {
		t.Fatalf("bad second poll: n=%d", n)
	}
}

func TestOpcodeStatusStrings(t *testing.T) {
	for _, op := range []Opcode{OpSend, OpWrite, OpWriteImm, OpRead, OpRecv, Opcode(99)} {
		if op.String() == "" {
			t.Fatalf("empty string for %d", op)
		}
	}
	for _, s := range []Status{StatusSuccess, StatusLocalProtectionError, StatusRemoteAccessError, StatusRecvBufferTooSmall, Status(99)} {
		if s.String() == "" {
			t.Fatalf("empty string for %d", s)
		}
	}
	if (Completion{}).Err() != nil {
		t.Fatal("success completion should have nil Err")
	}
}

// Property: a WRITE of any in-bounds (offset, length) pair lands exactly at
// the requested remote offset and nowhere else.
func TestPropertyWritePlacement(t *testing.T) {
	p := newTestPair(t)
	const size = 4096
	src := mustMR(t, p.pdA, size, 0)
	dst := mustMR(t, p.pdB, size, AccessRemoteWrite)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i * 31)
	}
	f := func(off uint16, length uint16, roff uint16) bool {
		o, l, ro := int(off)%size, int(length)%size, int(roff)%size
		if o+l > size || ro+l > size || l == 0 {
			return true // skip out-of-range samples
		}
		for i := range dst.Bytes() {
			dst.Bytes()[i] = 0
		}
		err := p.qpA.PostSend(SendWR{
			WRID: 1, Op: OpWrite, Signaled: true,
			Local:  Segment{MR: src, Offset: o, Length: l},
			Remote: RemoteSegment{RKey: dst.RKey(), Offset: ro},
		})
		if err != nil {
			return false
		}
		if c := p.scqA.Wait(); c.Status != StatusSuccess {
			return false
		}
		if !bytes.Equal(dst.Bytes()[ro:ro+l], src.Bytes()[o:o+l]) {
			return false
		}
		for i, b := range dst.Bytes() {
			if (i < ro || i >= ro+l) && b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSendersStress(t *testing.T) {
	// Many goroutines on one device each own a QP to the same peer and
	// blast messages; all payloads must arrive intact.
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	devA, devB := net.NewDevice(), net.NewDevice()
	pdA, pdB := devA.AllocPD(), devB.AllocPD()
	rcqB := devB.NewCQ()

	const senders = 8
	const msgs = 200
	const sz = 64

	type side struct {
		qpA, qpB *QP
		scq      *CompletionQueue
		src      *MemoryRegion
	}
	sides := make([]side, senders)
	recvMR := mustMR(t, pdB, senders*msgs*sz, AccessLocalWrite)
	slot := 0
	for i := range sides {
		scq := devA.NewCQ()
		qpA, err := pdA.CreateQP(QPConfig{SendCQ: scq, RecvCQ: devA.NewCQ()})
		if err != nil {
			t.Fatal(err)
		}
		qpB, err := pdB.CreateQP(QPConfig{SendCQ: devB.NewCQ(), RecvCQ: rcqB})
		if err != nil {
			t.Fatal(err)
		}
		if err := Connect(qpA, qpB); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < msgs; k++ {
			if err := qpB.PostRecv(RecvWR{WRID: uint64(slot), Local: Segment{MR: recvMR, Offset: slot * sz, Length: sz}}); err != nil {
				t.Fatal(err)
			}
			slot++
		}
		sides[i] = side{qpA: qpA, qpB: qpB, scq: scq, src: mustMR(t, pdA, sz, 0)}
	}
	done := make(chan error, senders)
	for i := range sides {
		go func(i int) {
			s := sides[i]
			for k := 0; k < msgs; k++ {
				for b := range s.src.Bytes() {
					s.src.Bytes()[b] = byte(i)
				}
				if err := s.qpA.PostSend(SendWR{Op: OpSend, Local: Segment{MR: s.src, Length: sz}, Imm: uint32(i), HasImm: true, Signaled: true}); err != nil {
					done <- err
					return
				}
				if c := s.scq.Wait(); c.Status != StatusSuccess {
					done <- c.Err()
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < senders; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Drain all receive completions and verify payload tags.
	got := 0
	buf := make([]Completion, 64)
	for got < senders*msgs {
		n := rcqB.Poll(buf)
		if n == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		for _, c := range buf[:n] {
			if c.Status != StatusSuccess {
				t.Fatalf("recv failed: %+v", c)
			}
			base := int(c.WRID) * sz
			for i := 0; i < sz; i++ {
				if recvMR.Bytes()[base+i] != byte(c.Imm) {
					t.Fatalf("payload corruption in slot %d", c.WRID)
				}
			}
		}
		got += n
	}
	s := devB.Stats()
	if s.Recvs != senders*msgs {
		t.Fatalf("Recvs = %d, want %d", s.Recvs, senders*msgs)
	}
	if s.BytesReceived != senders*msgs*sz {
		t.Fatalf("BytesReceived = %d", s.BytesReceived)
	}
}

func TestCreateQPValidation(t *testing.T) {
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	pd := net.NewDevice().AllocPD()
	if _, err := pd.CreateQP(QPConfig{}); err == nil {
		t.Fatal("CreateQP without CQs should fail")
	}
}

func TestPostRecvValidation(t *testing.T) {
	p := newTestPair(t)
	mrNoWrite := mustMR(t, p.pdB, 16, 0)
	if err := p.qpB.PostRecv(RecvWR{Local: Segment{MR: mrNoWrite, Length: 16}}); err != ErrAccessDenied {
		t.Fatalf("got %v, want ErrAccessDenied", err)
	}
	mrA := mustMR(t, p.pdA, 16, AccessLocalWrite)
	if err := p.qpB.PostRecv(RecvWR{Local: Segment{MR: mrA, Length: 16}}); err != ErrWrongPD {
		t.Fatalf("got %v, want ErrWrongPD", err)
	}
	if err := p.qpB.PostRecv(RecvWR{}); err == nil {
		t.Fatal("nil MR should fail")
	}
	mrB := mustMR(t, p.pdB, 16, AccessLocalWrite)
	if err := p.qpB.PostRecv(RecvWR{Local: Segment{MR: mrB, Offset: 10, Length: 16}}); err != ErrBadSegment {
		t.Fatalf("got %v, want ErrBadSegment", err)
	}
}

func TestReceiveQueueDepthLimit(t *testing.T) {
	net := NewNetwork(fabric.Config{})
	defer net.Close()
	dev := net.NewDevice()
	pd := dev.AllocPD()
	qp, _ := pd.CreateQP(QPConfig{SendCQ: dev.NewCQ(), RecvCQ: dev.NewCQ(), Depth: 3})
	mr := mustMR(t, pd, 16, AccessLocalWrite)
	for i := 0; i < 3; i++ {
		if err := qp.PostRecv(RecvWR{Local: Segment{MR: mr, Length: 16}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := qp.PostRecv(RecvWR{Local: Segment{MR: mr, Length: 16}}); err != ErrRQFull {
		t.Fatalf("got %v, want ErrRQFull", err)
	}
}
