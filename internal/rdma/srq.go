package rdma

import (
	"fmt"
	"sync"
)

// SRQ is a shared receive queue: many queue pairs draw their receives from
// one pool instead of per-QP rings. This is the verbs feature real
// channel-semantics receivers use when fan-in is large — the paper's
// two-sided receiver has (N_M−1)·(N_C−1) incoming queue pairs, and with an
// SRQ their receive buffers are shared instead of partitioned, so bursty
// senders cannot starve while buffers idle on quiet QPs.
type SRQ struct {
	pd    *ProtectionDomain
	depth int

	mu     sync.Mutex
	cond   *sync.Cond
	recvs  []RecvWR
	closed bool

	// rnr counts SENDs that had to wait for an SRQ buffer.
	rnr uint64
}

// CreateSRQ creates a shared receive queue holding at most depth posted
// receives (0 means DefaultQueueDepth).
func (pd *ProtectionDomain) CreateSRQ(depth int) *SRQ {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	s := &SRQ{pd: pd, depth: depth}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// PostRecv posts a receive buffer to the shared queue.
func (s *SRQ) PostRecv(wr RecvWR) error {
	if wr.Local.MR == nil {
		return fmt.Errorf("rdma: receive requires a memory region")
	}
	if wr.Local.MR.pd != s.pd {
		return ErrWrongPD
	}
	if _, err := wr.Local.MR.slice(wr.Local.Offset, wr.Local.Length); err != nil {
		return err
	}
	if wr.Local.MR.access&AccessLocalWrite == 0 {
		return ErrAccessDenied
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.recvs) >= s.depth {
		return ErrRQFull
	}
	s.recvs = append(s.recvs, wr)
	s.cond.Signal()
	return nil
}

// Close releases any senders blocked waiting for a buffer.
func (s *SRQ) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// RNRWaits returns how many incoming messages had to wait for a buffer.
func (s *SRQ) RNRWaits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rnr
}

// pop removes the oldest posted receive, blocking while empty.
func (s *SRQ) pop() (RecvWR, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	waited := false
	for len(s.recvs) == 0 && !s.closed {
		if !waited {
			waited = true
			s.rnr++
		}
		s.cond.Wait()
	}
	if len(s.recvs) == 0 {
		return RecvWR{}, false
	}
	wr := s.recvs[0]
	s.recvs = s.recvs[1:]
	return wr, true
}
