// Package rdma is a functional, in-process implementation of the RDMA
// verbs programming model used by the paper's distributed join: protection
// domains, registered memory regions, reliable-connected queue pairs,
// completion queues, two-sided SEND/RECV (channel semantics) and one-sided
// WRITE/READ (memory semantics), including WRITE-with-immediate.
//
// It substitutes for InfiniBand hardware: data movement is real (bytes are
// copied between per-machine memory regions by the fabric delivery
// goroutine, which plays the role of the destination HCA), and the
// asynchronous work-request/completion discipline is fully preserved.
// In particular the properties the paper's algorithm depends on hold:
//
//   - a posted buffer must not be touched until its completion is polled
//     (violations corrupt data exactly like on real hardware);
//   - SENDs consume posted receives in order; posting too few receives
//     stalls the sender (receiver-not-ready), which is observable in the
//     device statistics;
//   - memory registration is explicit and accounted per page, so buffer
//     pooling and reuse (Section 4 of the paper) have measurable effects;
//   - one-sided operations complete without any remote CPU involvement.
//
// Operations on a queue pair execute in posting order, matching
// reliable-connected (RC) transport semantics.
package rdma

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"rackjoin/internal/fabric"
	"rackjoin/internal/metrics"
)

// PageSize is the registration granularity used for pin accounting.
const PageSize = 4096

// DefaultQueueDepth is the default send/receive queue capacity of a QP.
const DefaultQueueDepth = 512

// Errors returned by verb calls (as opposed to asynchronous completion
// statuses, see Status).
var (
	ErrQPFull        = errors.New("rdma: send queue full")
	ErrRQFull        = errors.New("rdma: receive queue full")
	ErrNotConnected  = errors.New("rdma: queue pair not connected")
	ErrDeregistered  = errors.New("rdma: memory region deregistered")
	ErrBadSegment    = errors.New("rdma: segment out of memory region bounds")
	ErrClosed        = errors.New("rdma: object closed")
	ErrWrongPD       = errors.New("rdma: memory region belongs to a different protection domain")
	ErrAccessDenied  = errors.New("rdma: access flags do not permit operation")
	ErrNeedRemoteSeg = errors.New("rdma: operation requires a remote segment")
)

// Network owns the fabric and the set of devices attached to it. It is the
// top-level factory: one Network per simulated cluster.
type Network struct {
	fab *fabric.Fabric
	reg *metrics.Registry

	mu      sync.Mutex
	devices []*Device
}

// NewNetwork creates a network with the given fabric configuration. The
// network owns a metrics registry (cfg.Metrics, or a fresh one when nil)
// into which every device and the fabric record their telemetry.
func NewNetwork(cfg fabric.Config) *Network {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	return &Network{fab: fabric.New(cfg), reg: reg}
}

// Metrics returns the registry holding the network's device and fabric
// telemetry.
func (n *Network) Metrics() *metrics.Registry { return n.reg }

// NewDevice attaches a new device (HCA) to the network.
func (n *Network) NewDevice() *Device {
	return n.NewDeviceLabeled()
}

// NewDeviceLabeled attaches a new device whose metric series carry the
// given labels in addition to device=<id>. The cluster layer uses it to
// stamp each device with the machine that owns it, so device counters
// join against per-machine join telemetry without an external mapping.
func (n *Network) NewDeviceLabeled(extra ...metrics.Label) *Device {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := &Device{
		net:  n,
		node: n.fab.AddNode(),
		mrs:  make(map[uint32]*MemoryRegion),
		qps:  make(map[uint32]*QP),
	}
	d.id = len(n.devices)
	labels := append([]metrics.Label{metrics.L("device", strconv.Itoa(d.id))}, extra...)
	d.m = newDeviceMetrics(n.reg.Scope(labels...))
	n.devices = append(n.devices, d)
	return d
}

// Close shuts the underlying fabric down, draining in-flight operations.
func (n *Network) Close() { n.fab.Close() }

// FabricStats returns message/byte counters of the underlying fabric.
func (n *Network) FabricStats() fabric.Stats { return n.fab.Stats() }

// Fabric exposes the underlying fabric, e.g. for fault injection
// (fabric.DegradeLink and friends) in validation harnesses.
func (n *Network) Fabric() *fabric.Fabric { return n.fab }

func (n *Network) device(id int) *Device {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id < 0 || id >= len(n.devices) {
		return nil
	}
	return n.devices[id]
}

// Device models one machine's RDMA-capable network adapter.
type Device struct {
	net  *Network
	node *fabric.Node
	id   int
	m    deviceMetrics

	// hook, when set, observes every successfully posted send-queue verb
	// (flight-recorder instrumentation). Atomic so posting threads never
	// take a lock for the common nil case.
	hook atomic.Pointer[func(op Opcode, bytes int)]

	mu      sync.Mutex
	nextKey uint32
	nextQPN uint32
	mrs     map[uint32]*MemoryRegion // by rkey
	qps     map[uint32]*QP           // by qpn
}

// SetEventHook installs fn as the device's verb observer: it is called
// after every successful PostSend with the opcode and wire size. nil
// uninstalls. The hook runs on the posting thread and must be cheap and
// non-blocking.
func (d *Device) SetEventHook(fn func(op Opcode, bytes int)) {
	if fn == nil {
		d.hook.Store(nil)
		return
	}
	d.hook.Store(&fn)
}

// deviceMetrics are the registry-backed per-device counters and
// histograms; DeviceStats snapshots are reconstructed from them, so the
// same numbers are readable through Stats() and through the registry
// (names rdma_*, label device=<id>).
type deviceMetrics struct {
	registrations   *metrics.Counter
	deregistrations *metrics.Counter
	pagesRegistered *metrics.Counter
	pagesPinned     *metrics.Gauge

	sends   *metrics.Counter
	writes  *metrics.Counter
	reads   *metrics.Counter
	recvs   *metrics.Counter
	atomics *metrics.Counter

	bytesSent     *metrics.Counter
	bytesReceived *metrics.Counter

	rnrWaits *metrics.Counter
	// rnrWait distributes how long incoming SENDs blocked on a missing
	// receive (receiver-not-ready back-pressure); cqWait distributes how
	// long CompletionQueue.Wait calls blocked before a completion arrived.
	rnrWait *metrics.Histogram
	cqWait  *metrics.Histogram
}

func newDeviceMetrics(s *metrics.Scope) deviceMetrics {
	return deviceMetrics{
		registrations:   s.Counter("rdma_registrations_total"),
		deregistrations: s.Counter("rdma_deregistrations_total"),
		pagesRegistered: s.Counter("rdma_pages_registered_total"),
		pagesPinned:     s.Gauge("rdma_pages_pinned"),
		sends:           s.Counter("rdma_sends_total"),
		writes:          s.Counter("rdma_writes_total"),
		reads:           s.Counter("rdma_reads_total"),
		recvs:           s.Counter("rdma_recvs_total"),
		atomics:         s.Counter("rdma_atomics_total"),
		bytesSent:       s.Counter("rdma_bytes_sent_total"),
		bytesReceived:   s.Counter("rdma_bytes_received_total"),
		rnrWaits:        s.Counter("rdma_rnr_waits_total"),
		rnrWait:         s.Histogram("rdma_rnr_wait_seconds"),
		cqWait:          s.Histogram("rdma_cq_wait_seconds"),
	}
}

// DeviceStats aggregates per-device counters. All byte counts refer to
// payload bytes.
type DeviceStats struct {
	// Registration accounting (Section 3.2.1 of the paper: registration
	// cost grows with the number of pinned pages, motivating pooling).
	Registrations   uint64
	Deregistrations uint64
	PagesRegistered uint64
	PagesPinned     uint64 // currently pinned

	// Work request counters.
	Sends  uint64
	Writes uint64
	Reads  uint64
	Recvs  uint64 // receives consumed

	BytesSent     uint64
	BytesReceived uint64

	// Atomics counts remote atomic operations issued by this device.
	Atomics uint64

	// RNRWaits counts SENDs that arrived before a receive was posted and
	// had to wait (receiver-not-ready back-pressure).
	RNRWaits uint64
}

// ID returns the device's network-wide identifier.
func (d *Device) ID() int { return d.id }

// Stats returns a snapshot of the device counters, reconstructed from the
// registry-backed metrics.
func (d *Device) Stats() DeviceStats {
	pinned := d.m.pagesPinned.Value()
	if pinned < 0 {
		pinned = 0
	}
	return DeviceStats{
		Registrations:   d.m.registrations.Value(),
		Deregistrations: d.m.deregistrations.Value(),
		PagesRegistered: d.m.pagesRegistered.Value(),
		PagesPinned:     uint64(pinned),
		Sends:           d.m.sends.Value(),
		Writes:          d.m.writes.Value(),
		Reads:           d.m.reads.Value(),
		Recvs:           d.m.recvs.Value(),
		BytesSent:       d.m.bytesSent.Value(),
		BytesReceived:   d.m.bytesReceived.Value(),
		Atomics:         d.m.atomics.Value(),
		RNRWaits:        d.m.rnrWaits.Value(),
	}
}

// AllocPD creates a protection domain on the device.
func (d *Device) AllocPD() *ProtectionDomain {
	return &ProtectionDomain{dev: d}
}

// NewCQ creates a completion queue. Completion queues have unbounded
// capacity; real applications bound outstanding work at the QP instead.
// Blocking Wait latency is recorded in the device's rdma_cq_wait_seconds
// histogram.
func (d *Device) NewCQ() *CompletionQueue {
	cq := &CompletionQueue{waitHist: d.m.cqWait}
	cq.cond = sync.NewCond(&cq.mu)
	return cq
}

func (d *Device) registerMR(mr *MemoryRegion) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextKey++
	mr.rkey = d.nextKey
	mr.lkey = d.nextKey
	d.mrs[mr.rkey] = mr
	pages := uint64((len(mr.buf) + PageSize - 1) / PageSize)
	d.m.registrations.Inc()
	d.m.pagesRegistered.Add(pages)
	d.m.pagesPinned.Add(float64(pages))
}

func (d *Device) deregisterMR(mr *MemoryRegion) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.mrs[mr.rkey]; !ok {
		return
	}
	delete(d.mrs, mr.rkey)
	pages := uint64((len(mr.buf) + PageSize - 1) / PageSize)
	d.m.deregistrations.Inc()
	d.m.pagesPinned.Add(-float64(pages))
}

// lookupMR resolves an rkey on this device.
func (d *Device) lookupMR(rkey uint32) *MemoryRegion {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mrs[rkey]
}

func (d *Device) addQP(qp *QP) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextQPN++
	qp.qpn = d.nextQPN
	d.qps[qp.qpn] = qp
}

func (d *Device) qpByNumber(qpn uint32) *QP {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.qps[qpn]
}

// ProtectionDomain scopes memory regions and queue pairs, mirroring the
// verbs object model. Registering through a PD and creating QPs in the
// same PD is required for local access checks.
type ProtectionDomain struct {
	dev *Device
}

// Device returns the device owning the protection domain.
func (pd *ProtectionDomain) Device() *Device { return pd.dev }

// Access flags for memory registration.
type Access uint32

const (
	// AccessLocalWrite permits the local HCA to write (receives, reads).
	AccessLocalWrite Access = 1 << iota
	// AccessRemoteWrite permits remote one-sided WRITEs into the region.
	AccessRemoteWrite
	// AccessRemoteRead permits remote one-sided READs from the region.
	AccessRemoteRead
	// AccessRemoteAtomic permits remote atomic operations on the region.
	AccessRemoteAtomic
)

// RegisterMemory pins buf and makes it accessible to the HCA. The returned
// memory region exposes LKey for local scatter/gather entries and RKey for
// remote one-sided access.
//
// Registration is the expensive verb on real hardware (page pinning); the
// device accounts pages so that tests and benchmarks can assert buffer
// pools amortise it.
func (pd *ProtectionDomain) RegisterMemory(buf []byte, access Access) (*MemoryRegion, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("rdma: cannot register empty buffer")
	}
	mr := &MemoryRegion{pd: pd, buf: buf, access: access}
	pd.dev.registerMR(mr)
	return mr, nil
}

// MemoryRegion is a pinned, HCA-accessible range of memory.
type MemoryRegion struct {
	pd     *ProtectionDomain
	buf    []byte
	access Access
	lkey   uint32
	rkey   uint32

	mu     sync.Mutex
	closed bool
}

// LKey returns the local access key.
func (mr *MemoryRegion) LKey() uint32 { return mr.lkey }

// RKey returns the remote access key, advertised to peers for one-sided
// operations.
func (mr *MemoryRegion) RKey() uint32 { return mr.rkey }

// Len returns the region length in bytes.
func (mr *MemoryRegion) Len() int { return len(mr.buf) }

// Bytes exposes the underlying buffer. The caller owns synchronisation
// with outstanding work requests, exactly as on real hardware.
func (mr *MemoryRegion) Bytes() []byte { return mr.buf }

// Deregister unpins the region. Outstanding operations targeting it will
// complete with StatusRemoteAccessError / StatusLocalProtectionError.
func (mr *MemoryRegion) Deregister() error {
	mr.mu.Lock()
	if mr.closed {
		mr.mu.Unlock()
		return ErrDeregistered
	}
	mr.closed = true
	mr.mu.Unlock()
	mr.pd.dev.deregisterMR(mr)
	return nil
}

func (mr *MemoryRegion) valid() bool {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return !mr.closed
}

// slice bounds-checks and returns the byte range [off, off+n).
func (mr *MemoryRegion) slice(off, n int) ([]byte, error) {
	if !mr.valid() {
		return nil, ErrDeregistered
	}
	if off < 0 || n < 0 || off+n > len(mr.buf) {
		return nil, ErrBadSegment
	}
	return mr.buf[off : off+n], nil
}

// Segment addresses a byte range within a local memory region.
type Segment struct {
	MR     *MemoryRegion
	Offset int
	Length int
}

// RemoteSegment addresses a byte range within a remote memory region,
// identified by the remote key advertised by the peer.
type RemoteSegment struct {
	RKey   uint32
	Offset int
}

// MaxInline is the maximum inline payload size (IBV_SEND_INLINE cap;
// typical HCAs advertise a few hundred bytes).
const MaxInline = 256
