package rdma

import (
	"encoding/binary"
	"sync"
)

// Atomic verbs: 64-bit remote fetch-and-add and compare-and-swap, as
// provided by InfiniBand HCAs. Systems like FaRM (discussed in Section
// 3.2.1 of the paper) build their shared-address-space primitives on
// these; the join uses them in the atomic-append transport variant, where
// senders reserve write offsets in remote partition regions instead of
// precomputing them from histograms.
//
// Atomicity scope is the target device (HCA-serialised), matching
// IBV_ATOMIC_HCA. The original remote value is returned into the 8-byte
// local segment of the work request.

const (
	// OpFetchAdd atomically adds SendWR.Add to the remote 8-byte word and
	// returns the original value.
	OpFetchAdd Opcode = 16 + iota
	// OpCompareSwap atomically replaces the remote 8-byte word with
	// SendWR.Swap if it equals SendWR.Compare, returning the original.
	OpCompareSwap
)

// atomicLocks serialises atomic execution per device, modelling the HCA's
// internal atomic unit.
var atomicLocks sync.Map // *Device → *sync.Mutex

func deviceAtomicLock(d *Device) *sync.Mutex {
	if mu, ok := atomicLocks.Load(d); ok {
		return mu.(*sync.Mutex)
	}
	mu, _ := atomicLocks.LoadOrStore(d, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

func (qp *QP) validateAtomic(wr *SendWR) error {
	if wr.Local.Length != 8 {
		return ErrBadSegment
	}
	if wr.Local.MR.access&AccessLocalWrite == 0 {
		return ErrAccessDenied
	}
	if wr.Remote.RKey == 0 {
		return ErrNeedRemoteSeg
	}
	if wr.Remote.Offset%8 != 0 {
		return ErrBadSegment
	}
	return nil
}

// executeAtomic runs at the destination device.
func (qp *QP) executeAtomic(wr SendWR, dst *QP) {
	mr := dst.dev.lookupMR(wr.Remote.RKey)
	if mr == nil || mr.access&AccessRemoteAtomic == 0 {
		qp.completeSendSide(wr, StatusRemoteAccessError)
		return
	}
	target, err := mr.slice(wr.Remote.Offset, 8)
	if err != nil {
		qp.completeSendSide(wr, StatusRemoteAccessError)
		return
	}
	local, err := wr.Local.MR.slice(wr.Local.Offset, 8)
	if err != nil {
		qp.completeSendSide(wr, StatusLocalProtectionError)
		return
	}
	mu := deviceAtomicLock(dst.dev)
	mu.Lock()
	orig := binary.LittleEndian.Uint64(target)
	switch wr.Op {
	case OpFetchAdd:
		binary.LittleEndian.PutUint64(target, orig+wr.Add)
	case OpCompareSwap:
		if orig == wr.Compare {
			binary.LittleEndian.PutUint64(target, wr.Swap)
		}
	}
	mu.Unlock()
	binary.LittleEndian.PutUint64(local, orig)
	qp.dev.m.atomics.Inc()
	qp.completeSendSide(wr, StatusSuccess)
}
