// Command bandwidth reproduces Figure 3: point-to-point bandwidth as a
// function of message size on the QDR and FDR InfiniBand networks, and —
// with -measure — the corresponding throughput of the in-process RDMA
// substrate on this host (two-sided SENDs between two simulated machines;
// host-dependent, for the shape only).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rackjoin"
	"rackjoin/internal/rdma"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bandwidth: ")
	measure := flag.Bool("measure", false, "also measure the in-process substrate on this host")
	flag.Parse()

	fmt.Printf("%10s %14s %14s", "msg bytes", "QDR model MB/s", "FDR model MB/s")
	if *measure {
		fmt.Printf(" %16s", "in-process MB/s")
	}
	fmt.Println()
	for sz := 2; sz <= 512<<10; sz *= 2 {
		fmt.Printf("%10d %14.1f %14.1f", sz, rackjoin.QDR().PointToPoint(sz), rackjoin.FDR().PointToPoint(sz))
		if *measure {
			fmt.Printf(" %16.1f", measureLoopback(sz))
		}
		fmt.Println()
	}
	fmt.Println("\npaper: both networks reach and maintain full bandwidth for buffers ≥ 8 KB")
}

// measureLoopback pushes SENDs of the given size between two in-process
// devices for a short interval and reports MB/s.
func measureLoopback(msgSize int) float64 {
	c, err := rackjoin.NewCluster(2, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	m0, m1 := c.Machine(0), c.Machine(1)
	scq := m0.Dev.NewCQ()
	rcq := m1.Dev.NewCQ()
	qpA, qpB, err := c.ConnectQPs(0, 1,
		rdma.QPConfig{SendCQ: scq, RecvCQ: m0.Dev.NewCQ()},
		rdma.QPConfig{SendCQ: m1.Dev.NewCQ(), RecvCQ: rcq})
	if err != nil {
		log.Fatal(err)
	}
	src, err := m0.PD.RegisterMemory(make([]byte, msgSize), 0)
	if err != nil {
		log.Fatal(err)
	}
	const ringSlots = 64
	dst, err := m1.PD.RegisterMemory(make([]byte, msgSize*ringSlots), rdma.AccessLocalWrite)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < ringSlots; i++ {
		if err := qpB.PostRecv(rdma.RecvWR{WRID: uint64(i), Local: rdma.Segment{MR: dst, Offset: i * msgSize, Length: msgSize}}); err != nil {
			log.Fatal(err)
		}
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	var bytes int64
	var batch [16]rdma.Completion
	inflight := 0
	for time.Now().Before(deadline) || inflight > 0 {
		if time.Now().Before(deadline) && inflight < 32 {
			if err := qpA.PostSend(rdma.SendWR{Op: rdma.OpSend, Signaled: true, Local: rdma.Segment{MR: src, Length: msgSize}}); err != nil {
				log.Fatal(err)
			}
			inflight++
		} else {
			c := scq.Wait()
			if c.Err() != nil {
				log.Fatal(c.Err())
			}
			inflight--
			bytes += int64(msgSize)
		}
		// Recycle receives.
		n := rcq.Poll(batch[:])
		for _, cpl := range batch[:n] {
			if err := qpB.PostRecv(rdma.RecvWR{WRID: cpl.WRID, Local: rdma.Segment{MR: dst, Offset: int(cpl.WRID) * msgSize, Length: msgSize}}); err != nil {
				log.Fatal(err)
			}
		}
	}
	return float64(bytes) / (200e-3) / (1 << 20)
}
