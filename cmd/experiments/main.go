// Command experiments regenerates the paper's tables and figures
// (see DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments -list
//	experiments -run fig5a,fig7a
//	experiments -all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rackjoin/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		list = flag.Bool("list", false, "list available experiments")
		run  = flag.String("run", "", "comma-separated experiment IDs to run")
		all  = flag.Bool("all", false, "run every experiment")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
	case *all:
		if err := experiments.RunAll(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case *run != "":
		for _, id := range strings.Split(*run, ",") {
			if err := experiments.Run(os.Stdout, strings.TrimSpace(id)); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
