// Command simulate runs what-if scenarios of the distributed join at
// paper scale: pick a network, rack size, workload and algorithm
// parameters; get the per-phase simulated execution time next to the
// analytical model's prediction (Section 5).
//
// Examples:
//
//	simulate -net qdr -machines 6 -inner 2048 -outer 2048
//	simulate -net fdr -machines 4 -mode stream
//	simulate -net qdr -machines 4 -inner 128 -outer 2048 -skew 1.2 \
//	         -size-sorted -skew-split -broadcast 4
//	simulate -net qdr -sweep 2,10 -inner 1024 -outer 1024
//	simulate -net qdr -machines 6 -critpath -trace-out sim.json -trace-skew 500ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"rackjoin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		netName    = flag.String("net", "qdr", "network: qdr | fdr | ipoib")
		machines   = flag.Int("machines", 4, "rack size")
		cores      = flag.Int("cores", 8, "cores per machine")
		innerM     = flag.Int64("inner", 2048, "inner relation size in millions of tuples")
		outerM     = flag.Int64("outer", 2048, "outer relation size in millions of tuples")
		width      = flag.Int("width", 16, "tuple width in bytes")
		skew       = flag.Float64("skew", 0, "Zipf skew of the outer foreign keys")
		modeName   = flag.String("mode", "interleaved", "mode: interleaved | non-interleaved | stream")
		pipeline   = flag.Bool("pipeline", true, "partition-ready pipelining: overlap the join with the network pass")
		sizeSorted = flag.Bool("size-sorted", false, "dynamic size-sorted partition assignment")
		skewSplit  = flag.Bool("skew-split", false, "intra-machine build-probe task splitting")
		skewEngine = flag.Bool("skew-engine", false, "heavy-hitter skew engine: split-and-replicate hot partitions (implies -skew-split)")
		skewThresh = flag.Float64("skew-threshold", 0, "heavy-hitter frequency threshold as a fraction of |S| (0 = 4/2^bits)")
		broadcast  = flag.Float64("broadcast", 0, "inter-machine work sharing factor (0 = off)")
		bufSize    = flag.Int("buffer", 64<<10, "RDMA buffer size in bytes")
		buffers    = flag.Int("buffers", 2, "buffers per (thread, partition)")
		bits       = flag.Uint("bits", 10, "radix bits of the network pass")
		netsch     = flag.String("netsched", "off", "communication schedule of the network pass: off | rotate | weighted")
		contention = flag.Float64("contention", 0, "switch-contention factor: ingress slowdown per unit of queue depth (0 = uncongested model)")
		sweep      = flag.String("sweep", "", "sweep machine counts, e.g. 2,10")
		traceOut   = flag.String("trace-out", "", "write a Chrome (chrome://tracing) trace of the last simulated run to this file")
		critPath   = flag.Bool("critpath", false, "extract and report the causal critical path of the last simulated run")
		traceSkew  = flag.Duration("trace-skew", 0, "stamp simulated machines with alternating clock skews of this magnitude; the exports normalize them back out")
		obsvAddr   = flag.String("obsv-addr", "", "serve /metrics, /residual, /samples and /debug/pprof on this address (e.g. :8080)")
		sampleInt  = flag.Duration("sample-interval", 0, "snapshot registry deltas on this interval (0 = off)")
		obsvLinger = flag.Duration("obsv-linger", 0, "keep the observability server up this long after the sweep")
		diagnose   = flag.Bool("diagnose", false, "run the health detectors over each simulated execution and print their verdicts")
		faultLink  = flag.String("fault-degrade-link", "", "degrade one directed link: src:dst:factor (e.g. 1:3:0.25)")
		faultSlow  = flag.String("fault-slow-machine", "", "slow one machine's compute: machine:factor (e.g. 2:0.3)")
		faultDrop  = flag.String("fault-drop", "", "drop and retransmit posted buffers: rate for every sender, or machine:rate for one (e.g. 0.2 or 3:0.2)")
	)
	flag.Parse()

	var net rackjoin.Network
	switch *netName {
	case "qdr":
		net = rackjoin.QDR()
	case "fdr":
		net = rackjoin.FDR()
	case "ipoib":
		net = rackjoin.IPoIB()
	default:
		log.Fatalf("unknown network %q", *netName)
	}
	policy, err := rackjoin.ParseNetSchedPolicy(*netsch)
	if err != nil {
		log.Fatal(err)
	}
	var mode rackjoin.SimMode
	switch *modeName {
	case "interleaved":
		mode = rackjoin.Interleaved
	case "non-interleaved":
		mode = rackjoin.NonInterleaved
	case "stream":
		mode = rackjoin.StreamMode
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}

	lo, hi := *machines, *machines
	if *sweep != "" {
		if _, err := fmt.Sscanf(*sweep, "%d,%d", &lo, &hi); err != nil || lo < 1 || hi < lo {
			log.Fatalf("bad -sweep %q (want lo,hi)", *sweep)
		}
	}
	fmt.Printf("%dM ⋈ %dM (%d-byte tuples, skew %.2f) on %s, %d cores/machine, %s\n\n",
		*innerM, *outerM, *width, *skew, net.Name, *cores, mode)

	// Observability plane: the simulated phase breakdown lands in a
	// registry as the same phase_seconds{machine,phase} gauges a real run
	// records, so /metrics, the sampler and the residual profiler see a
	// simulation exactly like an execution.
	reg := rackjoin.NewMetricsRegistry()
	var sampler *rackjoin.Sampler
	if *sampleInt > 0 {
		sampler = rackjoin.NewSampler(reg, *sampleInt, nil)
		sampler.Start()
		defer sampler.Stop()
	}
	var obsrv *rackjoin.ObsvServer
	if *obsvAddr != "" {
		obsrv = rackjoin.NewObsvServer(rackjoin.ObsvOptions{Registry: reg, Sampler: sampler})
		addr, err := obsrv.Start(*obsvAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer obsrv.Close()
		fmt.Printf("observability plane on http://%s\n\n", addr)
	}

	var residual *rackjoin.Residual
	var lastCfg rackjoin.SimConfig
	var lastRes *rackjoin.SimResult
	for nm := lo; nm <= hi; nm++ {
		cfg := rackjoin.SimConfig{
			Machines: nm, Cores: *cores, Net: net,
			RTuples: *innerM << 20, STuples: *outerM << 20,
			TupleWidth: *width, Skew: *skew, Mode: mode,
			NetworkBits: *bits, BufferSize: *bufSize, BuffersPerPartition: *buffers,
			SizeSortedAssignment: *sizeSorted, SkewSplit: *skewSplit,
			SkewEngine: *skewEngine, SkewThreshold: *skewThresh,
			BroadcastFactor: *broadcast, Pipeline: *pipeline,
			NetSched: policy, SwitchContention: *contention,
		}
		applyFaults(&cfg, *faultLink, *faultSlow, *faultDrop, nm == lo)
		res, err := rackjoin.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sec := res.Phases.Seconds()
		fmt.Printf("%2d machines: hist=%5.2f net=%6.2f local=%5.2f bp=%5.2f | total %6.2f s",
			nm, sec[0], sec[1], sec[2], sec[3], res.Phases.Total().Seconds())
		if *skew == 0 && mode == rackjoin.Interleaved && *broadcast == 0 {
			pred := rackjoin.NewModel(nm, *cores, net).
				Predict(rackjoin.ModelWorkloadTuples(*innerM<<20, *outerM<<20, *width))
			fmt.Printf("  (model %6.2f s)", pred.Total().Seconds())
		}
		fmt.Printf("  [%.0f MB over network, %d stalls", res.RemoteMB, res.Stalls)
		if policy != rackjoin.NetSchedOff || *contention > 0 {
			fmt.Printf(", link queue max %.1f avg %.2f ms",
				res.MaxLinkQueueSec*1e3, res.AvgLinkQueueSec*1e3)
		}
		fmt.Printf("]\n")
		if *skewEngine && res.Detail != nil && len(res.Detail.SplitPartitions) > 0 {
			fmt.Printf("             skew engine: %d partitions split-and-replicated (%.0f MB replication)\n",
				len(res.Detail.SplitPartitions), res.Detail.ReplicatedMB)
		}
		if *diagnose {
			if ds := rackjoin.DiagnoseSim(cfg, res); len(ds) == 0 {
				fmt.Printf("             health: clean\n")
			} else {
				for _, d := range ds {
					fmt.Printf("             health: %s\n", d)
				}
			}
		}

		lastCfg, lastRes = cfg, res
		recordPhases(reg, res)
		residual = rackjoin.ProfileResidual(reg, rackjoin.ResidualConfig{
			Machines: nm, CoresPerMachine: *cores, Net: net,
			RTuples: *innerM << 20, STuples: *outerM << 20, TupleWidth: *width,
			Measured: res.Phases, PerMachine: res.PerMachine,
			PoolStalls: res.Stalls,
			Messages:   uint64(res.RemoteMB * (1 << 20) / float64(*bufSize)),
		})
		if obsrv != nil {
			obsrv.SetResidual(residual)
		}
	}
	if residual != nil {
		fmt.Println()
		residual.Report(os.Stdout)
	}
	// A simulation yields the same causal trace a measured run records
	// (synthetic spans with the real span vocabulary), so the Chrome export
	// and the critical-path analyzer apply unchanged. The per-machine clock
	// skews of -trace-skew exercise the clock normalization: the exported
	// trace is identical whatever skew is stamped in.
	if lastRes != nil && (*traceOut != "" || *critPath) {
		tr := rackjoin.BuildSimTrace(lastCfg, lastRes, rackjoin.SimTraceSkews(lastCfg.Machines, *traceSkew))
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := tr.WriteChromeJSON(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nwrote Chrome trace of the %d-machine run to %s (open in chrome://tracing or Perfetto)\n",
				lastCfg.Machines, *traceOut)
		}
		if *critPath {
			cp, err := tr.CriticalPath()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println()
			cp.Report(os.Stdout)
		}
	}
	if *obsvLinger > 0 && obsrv != nil {
		fmt.Printf("\nobservability server lingering %s on http://%s — ctrl-C to quit early\n",
			*obsvLinger, obsrv.Addr())
		time.Sleep(*obsvLinger)
	}
}

// applyFaults installs the flag-specified fault plan on one simulation
// config; announce prints the plan once (the sweep reuses it per size).
func applyFaults(cfg *rackjoin.SimConfig, link, slow, drop string, announce bool) {
	if link != "" {
		var src, dst int
		var factor float64
		if _, err := fmt.Sscanf(link, "%d:%d:%f", &src, &dst, &factor); err != nil {
			log.Fatalf("bad -fault-degrade-link %q (want src:dst:factor): %v", link, err)
		}
		cfg.DegradeLink(src, dst, factor)
		if announce {
			fmt.Printf("fault: link m%d→m%d degraded to %.0f%%\n", src, dst, factor*100)
		}
	}
	if slow != "" {
		var m int
		var factor float64
		if _, err := fmt.Sscanf(slow, "%d:%f", &m, &factor); err != nil {
			log.Fatalf("bad -fault-slow-machine %q (want machine:factor): %v", slow, err)
		}
		cfg.SlowMachine(m, factor)
		if announce {
			fmt.Printf("fault: machine %d compute slowed to %.0f%%\n", m, factor*100)
		}
	}
	if drop != "" {
		var m int
		var rate float64
		if _, err := fmt.Sscanf(drop, "%d:%f", &m, &rate); err == nil {
			cfg.DropBuffersAt(m, rate)
			if announce {
				fmt.Printf("fault: machine %d drops %.1f%% of its buffers\n", m, rate*100)
			}
		} else if _, err := fmt.Sscanf(drop, "%f", &rate); err == nil {
			cfg.DropBuffers(rate)
			if announce {
				fmt.Printf("fault: every sender drops %.1f%% of its buffers\n", rate*100)
			}
		} else {
			log.Fatalf("bad -fault-drop %q (want rate or machine:rate)", drop)
		}
	}
	if announce && (link != "" || slow != "" || drop != "") {
		fmt.Println()
	}
}

// recordPhases exports a simulated result into the registry as the
// phase_seconds{machine,phase} gauges a real execution records.
func recordPhases(reg *rackjoin.MetricsRegistry, res *rackjoin.SimResult) {
	names := []string{"histogram", "network_partition", "local_partition", "build_probe"}
	for m, pt := range res.PerMachine {
		sec := pt.Seconds()
		for i, name := range names {
			reg.Gauge("phase_seconds",
				rackjoin.L("machine", strconv.Itoa(m)), rackjoin.L("phase", name)).Set(sec[i])
		}
	}
}
