// Command rackvet runs the repo's custom static-analysis suite — the
// invariants the race detector and go vet cannot enforce — over the
// packages matched by the given patterns (default ./...).
//
//	go run ./cmd/rackvet ./...
//
// It prints one line per finding (file:line:col: analyzer: message) and
// exits 1 if anything was found; `make check` and CI treat that as a
// build failure. See DESIGN.md §11 and §16 for the analyzers and the
// invariants they encode.
//
// The hotalloc pass needs the compiler's escape analysis: the driver
// runs `go build -gcflags=-m=1` over the same patterns and feeds the
// parsed diagnostics in. The Go build cache replays those diagnostics
// on cache hits, so the step costs a full compile only the first time.
//
// Findings can be suppressed at the source line with a
// `//rackvet:ignore <pass> <reason>` comment, or tolerated wholesale
// via the baseline file (-baseline, default rackvet.baseline): one
// `analyzer: file: message` signature per line, no line numbers, so
// entries survive unrelated edits. -json or -json-out emit the
// machine-readable form CI uploads as an artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"rackjoin/internal/analyzers/atomicmix"
	"rackjoin/internal/analyzers/buflifecycle"
	"rackjoin/internal/analyzers/goroutinelife"
	"rackjoin/internal/analyzers/hotalloc"
	"rackjoin/internal/analyzers/load"
	"rackjoin/internal/analyzers/lockorder"
	"rackjoin/internal/analyzers/metricnames"
	"rackjoin/internal/analyzers/rackvet"
	"rackjoin/internal/analyzers/spanend"
	"rackjoin/internal/analyzers/unsafekeepalive"
)

var analyzers = []*rackvet.Analyzer{
	buflifecycle.Analyzer,
	spanend.Analyzer,
	atomicmix.Analyzer,
	unsafekeepalive.Analyzer,
	metricnames.Analyzer,
	lockorder.Analyzer,
	goroutinelife.Analyzer,
	hotalloc.Analyzer,
}

// finding is one diagnostic in output (and JSON) form.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report is the machine-readable output CI archives.
type report struct {
	Findings   []finding `json:"findings"`
	Suppressed int       `json:"suppressed"`
	Baselined  int       `json:"baselined"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "write findings as JSON to stdout instead of text")
	jsonFile := flag.String("json-out", "", "also write findings as JSON to this file")
	baselinePath := flag.String("baseline", "rackvet.baseline", "baseline file of tolerated findings (missing file = empty)")
	noEscapes := flag.Bool("no-escapes", false, "skip the escape-analysis build; hotalloc runs its static checks only")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rackvet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rackvet: %v\n", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rackvet: %v\n", err)
		os.Exit(2)
	}

	if !*noEscapes {
		loadEscapes(cwd, patterns)
	}

	baseline, err := rackvet.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rackvet: baseline: %v\n", err)
		os.Exit(2)
	}

	rep := report{Findings: []finding{}}
	for _, pkg := range pkgs {
		supp := rackvet.NewSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			a := a
			pass := &rackvet.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Sizes:     pkg.Sizes,
				Report: func(d rackvet.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					if supp.Suppressed(pos, a.Name) {
						rep.Suppressed++
						return
					}
					file := pos.Filename
					if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
						file = rel
					}
					if baseline.Has(a.Name, file, d.Message) {
						rep.Baselined++
						return
					}
					rep.Findings = append(rep.Findings, finding{
						File: file, Line: pos.Line, Col: pos.Column,
						Analyzer: a.Name, Message: d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "rackvet: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	if *jsonFile != "" {
		if err := writeJSON(*jsonFile, rep); err != nil {
			fmt.Fprintf(os.Stderr, "rackvet: %v\n", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "rackvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

func hasDotDotPrefix(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// loadEscapes compiles the analyzed patterns with -gcflags=-m=1 and
// installs the parsed heap-escape diagnostics for the hotalloc pass. A
// failing build is a warning, not an error: the suite's other passes
// (and hotalloc's static checks) are still valid.
func loadEscapes(cwd string, patterns []string) {
	args := append([]string{"build", "-gcflags=-m=1"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cwd
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rackvet: escape analysis unavailable (go build: %v); hotalloc runs static checks only\n", err)
		return
	}
	hotalloc.SetEscapes(hotalloc.ParseEscapes(cwd, out))
}

func writeJSON(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
