// Command rackvet runs the repo's custom static-analysis suite — the
// invariants the race detector and go vet cannot enforce — over the
// packages matched by the given patterns (default ./...).
//
//	go run ./cmd/rackvet ./...
//
// It prints one line per finding (file:line:col: analyzer: message) and
// exits 1 if anything was found; `make check` and CI treat that as a
// build failure. See DESIGN.md §11 for the analyzers and the
// invariants they encode.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"

	"rackjoin/internal/analyzers/atomicmix"
	"rackjoin/internal/analyzers/buflifecycle"
	"rackjoin/internal/analyzers/load"
	"rackjoin/internal/analyzers/metricnames"
	"rackjoin/internal/analyzers/rackvet"
	"rackjoin/internal/analyzers/spanend"
	"rackjoin/internal/analyzers/unsafekeepalive"
)

var analyzers = []*rackvet.Analyzer{
	buflifecycle.Analyzer,
	spanend.Analyzer,
	atomicmix.Analyzer,
	unsafekeepalive.Analyzer,
	metricnames.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rackvet [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rackvet: %v\n", err)
		os.Exit(2)
	}

	type finding struct {
		pos      token.Position
		analyzer string
		msg      string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &rackvet.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Sizes:     pkg.Sizes,
				Report: func(d rackvet.Diagnostic) {
					findings = append(findings, finding{pkg.Fset.Position(d.Pos), a.Name, d.Message})
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "rackvet: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s: %s: %s\n", f.pos, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
