// Command rackjoin runs one distributed radix hash join on the in-process
// RDMA cluster and reports the result, phase breakdown, network statistics
// and verification verdict.
//
// Usage:
//
//	rackjoin -machines 4 -cores 4 -inner 1048576 -outer 4194304 \
//	         -transport two-sided -skew 0 -width 16
//
// With -trace-out the per-machine phase timeline is written as Chrome
// trace-event JSON with cross-machine flow edges (open in
// chrome://tracing or https://ui.perfetto.dev); with -critpath the causal
// critical path of the run is extracted and reported; with -metrics-out
// the full metrics registry is dumped as JSON. A flight recorder of
// recent low-level events runs by default and is dumped to stderr when
// the join fails (-flightrec 0 disables it).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"rackjoin"
	"rackjoin/internal/fabric"
)

// fabricNode converts a machine index to its fabric node id.
func fabricNode(m int) fabric.NodeID { return fabric.NodeID(m) }

func main() {
	log.SetFlags(0)
	log.SetPrefix("rackjoin: ")

	var (
		machines   = flag.Int("machines", 4, "number of simulated machines")
		cores      = flag.Int("cores", 4, "worker cores per machine")
		innerN     = flag.Int("inner", 1<<20, "inner relation cardinality |R|")
		outerN     = flag.Int("outer", 1<<22, "outer relation cardinality |S|")
		width      = flag.Int("width", 16, "tuple width in bytes (16, 32 or 64)")
		skew       = flag.Float64("skew", 0, "Zipf skew factor of the outer foreign keys (0 = uniform)")
		seed       = flag.Int64("seed", 2015, "workload seed")
		transport  = flag.String("transport", "two-sided", "transport: two-sided | one-sided | stream | tcp")
		interleave = flag.Bool("interleave", true, "interleave computation and communication")
		pipeline   = flag.Bool("pipeline", true, "partition-ready pipelining: join partitions as they complete instead of after a barrier")
		netBits    = flag.Uint("network-bits", 6, "radix bits of the network partitioning pass")
		localBits  = flag.Uint("local-bits", 6, "radix bits of the local partitioning pass (0 = skip)")
		bufSize    = flag.Int("buffer", 16<<10, "RDMA buffer size in bytes")
		buffers    = flag.Int("buffers-per-partition", 2, "RDMA buffers per (thread, remote partition)")
		assignment = flag.String("assignment", "round-robin", "partition assignment: round-robin | size-sorted")
		netsch     = flag.String("netsched", "off", "communication schedule of the network pass: off | rotate | weighted")
		split      = flag.Float64("skew-split", 0, "split build-probe tasks above this multiple of the average (0 = off)")
		skewMode   = flag.String("skew-mode", "off", "heavy-hitter skew engine: off | detect | split (split-and-replicate hot partitions)")
		skewThresh = flag.Float64("skew-threshold", 0, "heavy-hitter frequency threshold as a fraction of |S| (0 = 4/2^network-bits)")
		throttle   = flag.Float64("throttle", 0, "per-host fabric bandwidth cap in MB/s (0 = unthrottled)")
		showTrace  = flag.Bool("trace", false, "print a per-machine phase timeline")
		critPath   = flag.Bool("critpath", false, "extract and print the critical path of the run (implies tracing)")
		flightRec  = flag.Int("flightrec", 512, "flight-recorder events retained per machine (0 = off); dumped on join failure")
		traceOut   = flag.String("trace-out", "", "write the execution trace as Chrome trace-event JSON to this file")
		metricsOut = flag.String("metrics-out", "", "write the metrics registry snapshot as JSON to this file")
		obsvAddr   = flag.String("obsv-addr", "", "serve /metrics, /trace, /critpath, /flightrec, /samples, /residual and /debug/pprof on this address (e.g. :8080)")
		sampleInt  = flag.Duration("sample-interval", 0, "snapshot registry deltas on this interval (0 = off)")
		samplesOut = flag.String("samples-out", "", "append sampler records as JSONL to this file")
		modelNet   = flag.String("model-net", "qdr", "network to score the run against: qdr | fdr | ipoib")
		obsvLinger = flag.Duration("obsv-linger", 0, "keep the observability server up this long after the run")
		diagnose   = flag.Bool("diagnose", false, "run the online health engine (serves /health with -obsv-addr) and print its verdicts after the run")
		faultLink  = flag.String("fault-degrade-link", "", "degrade one directed fabric link: src:dst:factor (e.g. 1:3:0.25); needs -throttle")
		faultSlow  = flag.String("fault-slow-machine", "", "slow one machine's HCA: machine:factor (e.g. 2:0.3); needs -throttle")
		faultDrop  = flag.Float64("fault-drop", 0, "fabric drop rate: this fraction of transfers is charged for the wire twice (retransmission)")
	)
	flag.Parse()

	cfg := rackjoin.DefaultJoinConfig()
	cfg.NetworkBits = *netBits
	cfg.LocalBits = *localBits
	cfg.BufferSize = *bufSize
	cfg.BuffersPerPartition = *buffers
	cfg.Interleaved = *interleave
	cfg.Pipeline = *pipeline
	cfg.SkewSplitFactor = *split
	switch *transport {
	case "two-sided":
		cfg.Transport = rackjoin.TwoSided
	case "one-sided":
		cfg.Transport = rackjoin.OneSided
	case "stream":
		cfg.Transport = rackjoin.Stream
	case "tcp":
		cfg.Transport = rackjoin.TCP
	default:
		log.Fatalf("unknown transport %q", *transport)
	}
	switch *assignment {
	case "round-robin":
		cfg.Assignment = rackjoin.RoundRobin
	case "size-sorted":
		cfg.Assignment = rackjoin.SizeSorted
	default:
		log.Fatalf("unknown assignment %q", *assignment)
	}
	if pol, err := rackjoin.ParseNetSchedPolicy(*netsch); err != nil {
		log.Fatal(err)
	} else {
		cfg.NetSched = pol
	}
	if mode, err := rackjoin.ParseSkewMode(*skewMode); err != nil {
		log.Fatal(err)
	} else {
		cfg.Skew = mode
	}
	cfg.SkewThreshold = *skewThresh

	var (
		c   *rackjoin.Cluster
		err error
	)
	if *throttle > 0 {
		c, err = rackjoin.NewThrottledCluster(*machines, *cores, *throttle*1e6)
	} else {
		c, err = rackjoin.NewCluster(*machines, *cores)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	if *faultLink != "" {
		var src, dst int
		var factor float64
		if _, err := fmt.Sscanf(*faultLink, "%d:%d:%f", &src, &dst, &factor); err != nil {
			log.Fatalf("bad -fault-degrade-link %q (want src:dst:factor): %v", *faultLink, err)
		}
		if err := c.Fabric().DegradeLink(fabricNode(src), fabricNode(dst), factor); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fault: link m%d→m%d degraded to %.0f%%\n", src, dst, factor*100)
	}
	if *faultSlow != "" {
		var m int
		var factor float64
		if _, err := fmt.Sscanf(*faultSlow, "%d:%f", &m, &factor); err != nil {
			log.Fatalf("bad -fault-slow-machine %q (want machine:factor): %v", *faultSlow, err)
		}
		if err := c.Fabric().SlowMachine(fabricNode(m), factor); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fault: machine %d slowed to %.0f%%\n", m, factor*100)
	}
	if *faultDrop > 0 {
		if err := c.Fabric().DropBuffers(*faultDrop); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fault: dropping %.1f%% of transfers (delay-based retransmission)\n", *faultDrop*100)
	}

	wcfg := rackjoin.WorkloadConfig{
		InnerTuples: *innerN, OuterTuples: *outerN,
		TupleWidth: *width, Skew: *skew, Seed: *seed,
	}
	fmt.Printf("generating %d ⋈ %d tuples (width %d, skew %.2f) over %d machines…\n",
		*innerN, *outerN, *width, *skew, *machines)
	inner, outer := rackjoin.GenerateWorkload(wcfg, *machines)
	want := rackjoin.ExpectedJoin(outer)

	var tracer *rackjoin.Tracer
	if *showTrace || *critPath || *traceOut != "" || *obsvAddr != "" {
		tracer = rackjoin.NewTracer()
		cfg.Trace = tracer
	}
	var flight *rackjoin.FlightRecorder
	if *flightRec > 0 {
		flight = rackjoin.NewFlightRecorder(*machines, *flightRec)
		cfg.Flight = flight
	}

	var net rackjoin.Network
	switch *modelNet {
	case "qdr":
		net = rackjoin.QDR()
	case "fdr":
		net = rackjoin.FDR()
	case "ipoib":
		net = rackjoin.IPoIB()
	default:
		log.Fatalf("unknown model network %q", *modelNet)
	}
	if *throttle > 0 {
		// Score against the fabric actually configured, not the paper's.
		net.Name = fmt.Sprintf("throttled %.0f MB/s", *throttle)
		net.Base = *throttle
		net.CongestionPerMachine = 0
	}

	var sampler *rackjoin.Sampler
	if *sampleInt > 0 || *samplesOut != "" {
		var sink io.Writer
		if *samplesOut != "" {
			f, err := os.Create(*samplesOut)
			if err != nil {
				log.Fatalf("samples out: %v", err)
			}
			defer f.Close()
			sink = f
		}
		sampler = rackjoin.NewSampler(c.Metrics(), *sampleInt, sink)
		sampler.Start()
		defer sampler.Stop()
	}
	var engine *rackjoin.HealthEngine
	if *diagnose {
		expected := 0.0
		if *throttle > 0 {
			expected = *throttle // MB/s, the fabric cap the engine should see achieved
		}
		engine = rackjoin.NewHealthEngine(rackjoin.HealthOptions{
			Machines: *machines, Registry: c.Metrics(), Flight: flight,
			ExpectedLinkMBps: expected, DumpSink: os.Stderr,
		})
		engine.Start()
		defer engine.Stop()
	}
	var obsrv *rackjoin.ObsvServer
	if *obsvAddr != "" {
		opts := rackjoin.ObsvOptions{
			Registry: c.Metrics(), Trace: tracer, Sampler: sampler, Flight: flight,
		}
		if engine != nil {
			opts.Health = engine
		}
		obsrv = rackjoin.NewObsvServer(opts)
		addr, err := obsrv.Start(*obsvAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer obsrv.Close()
		fmt.Printf("observability plane on http://%s (metrics, trace, samples, residual, pprof)\n", addr)
	}

	res, err := rackjoin.Join(c, inner, outer, cfg)
	if err != nil {
		if flight != nil {
			fmt.Fprintln(os.Stderr, "\nflight recorder (events leading to the failure):")
			flight.WriteText(os.Stderr)
		}
		log.Fatal(err)
	}

	passes := 1
	if cfg.LocalBits > 0 {
		passes = 2
	}
	residual := rackjoin.ProfileResidual(c.Metrics(), rackjoin.ResidualConfig{
		Machines: *machines, CoresPerMachine: *cores, Net: net, Passes: passes,
		RTuples: int64(*innerN), STuples: int64(*outerN), TupleWidth: *width,
		Measured: res.Phases, PerMachine: res.PerMachine,
		PoolStalls: res.Net.PoolStalls, Messages: res.Net.Messages,
	})
	if obsrv != nil {
		obsrv.SetResidual(residual)
	}
	if tracer != nil && *showTrace {
		fmt.Println()
		tracer.Gantt(os.Stdout, 64)
		fmt.Println()
		tracer.Summary(os.Stdout)
	}
	if *critPath {
		cp, err := tracer.CriticalPath()
		if err != nil {
			log.Fatalf("critical path: %v", err)
		}
		fmt.Println()
		cp.Report(os.Stdout)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, tracer.WriteChromeJSON); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing)\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, c.Metrics().WriteJSON); err != nil {
			log.Fatalf("writing metrics: %v", err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}

	fmt.Printf("\ntransport=%s assignment=%s interleaved=%v pipelined=%v\n",
		cfg.Transport, cfg.Assignment, cfg.Interleaved, cfg.Pipeline)
	fmt.Printf("matches   %d (expected %d)\n", res.Matches, want.Matches)
	fmt.Printf("checksum  %d (expected %d)\n", res.Checksum, want.Checksum)
	fmt.Printf("phases    %s\n", res.Phases)
	var maxOverlap time.Duration
	for _, o := range res.PipelineOverlap {
		if o > maxOverlap {
			maxOverlap = o
		}
	}
	if maxOverlap > 0 {
		fmt.Printf("overlap   %s of join work hidden inside the network pass (max across machines)\n",
			maxOverlap.Round(time.Microsecond))
	}
	fmt.Printf("network   %.1f MB in %d messages, %d pool stalls, %d registrations (%d pages)\n",
		float64(res.Net.BytesSent)/(1<<20), res.Net.Messages, res.Net.PoolStalls,
		res.Net.Registrations, res.Net.PagesRegistered)
	for m, pt := range res.PerMachine {
		fmt.Printf("machine %d %s (%d partitions)\n", m, pt, res.PartitionsPerMachine[m])
	}
	if res.Skew.Mode != rackjoin.SkewModeOff {
		fmt.Printf("skew      mode=%s heavy-hitters=%d split-partitions=%v replicated=%.1f MB task-splits=%d\n",
			res.Skew.Mode, len(res.Skew.HeavyHitters), res.Skew.SplitPartitions,
			float64(res.Skew.ReplicatedBytes)/(1<<20), res.Skew.TaskSplits)
	}
	printMetricsSummary(c.Metrics())
	fmt.Println()
	residual.Report(os.Stdout)
	if engine != nil {
		engine.Stop() // final evaluation over the end-of-run registry state
		fmt.Println("\nhealth plane:")
		engine.WriteText(os.Stdout)
		var cp *rackjoin.CriticalPath
		if tracer != nil {
			if p, err := tracer.CriticalPath(); err == nil {
				cp = p
			}
		}
		fmt.Println()
		rackjoin.BuildHealthReport(engine.Diagnoses(), cp, residual).WriteText(os.Stdout)
	}
	if *obsvLinger > 0 && obsrv != nil {
		fmt.Printf("\nobservability server lingering %s on http://%s — ctrl-C to quit early\n",
			*obsvLinger, obsrv.Addr())
		time.Sleep(*obsvLinger)
	}
	if res.Matches != want.Matches || res.Checksum != want.Checksum {
		fmt.Println("VERIFICATION FAILED")
		os.Exit(1)
	}
	fmt.Println("verification OK")
}

// writeFile streams write(f) into path, creating or truncating it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printMetricsSummary aggregates the registry snapshot across labels and
// prints one line per metric name: counters and gauges sum their values,
// histograms pool observation counts and report the worst p99.
func printMetricsSummary(reg *rackjoin.MetricsRegistry) {
	type agg struct {
		typ   string
		value float64 // counter/gauge: Σ value; histogram: Σ sum
		count uint64
		p99   float64
		n     int // series
	}
	byName := map[string]*agg{}
	for _, s := range reg.Snapshot() {
		a := byName[s.Name]
		if a == nil {
			a = &agg{typ: string(s.Type)}
			byName[s.Name] = a
		}
		a.n++
		switch string(s.Type) {
		case "histogram":
			a.value += s.Sum
			a.count += s.Count
			if s.P99 > a.p99 {
				a.p99 = s.P99
			}
		default:
			a.value += s.Value
		}
	}
	if len(byName) == 0 {
		return
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\n%-32s %-9s %8s %14s\n", "metric", "type", "series", "aggregate")
	for _, n := range names {
		a := byName[n]
		switch a.typ {
		case "histogram":
			fmt.Printf("%-32s %-9s %8d %14s\n", n, a.typ, a.n,
				fmt.Sprintf("n=%d Σ=%.3gs", a.count, a.value))
			if a.count > 0 {
				fmt.Printf("%-32s %-9s %8s %14s\n", "", "", "",
					fmt.Sprintf("p99≤%.3gs", a.p99))
			}
		default:
			fmt.Printf("%-32s %-9s %8d %14.6g\n", n, a.typ, a.n, a.value)
		}
	}
}
