// Command benchfmt converts `go test -bench` output read from stdin into
// machine-readable JSON on stdout, pairing each scalar kernel benchmark
// with its write-combining / batched counterpart and computing speedups.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkKernel' ./internal/radix | benchfmt
//
// It is the backend of `make bench-kernels`, which checks the result in
// as BENCH_kernels.json.
//
// With -baseline the fresh results are additionally compared against a
// previously checked-in report: benchmarks whose ns/op regressed by more
// than -threshold (default 10%) are listed on stderr and the exit status
// is 1, making `make bench-baseline` an advisory regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Pkg        string  `json:"pkg,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	BPerOp     int64   `json:"b_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric pairs (e.g. "sim-net-s",
	// "maxq-ms") keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Speedup relates a kernel variant to its scalar baseline on the same
// shape: Speedup = baseline ns/op ÷ variant ns/op (>1 means faster).
type Speedup struct {
	Name     string  `json:"name"`
	Baseline string  `json:"baseline"`
	Speedup  float64 `json:"speedup"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkKernelScatterWC/w16/bits10-8  33  35197659 ns/op  1906.42 MB/s  12 B/op  3 allocs/op
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op` +
		`(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// metricPair matches one custom b.ReportMetric column, e.g.
// "0.974 sim-net-s" or "126.1 maxq-ms" — any unit the standard columns
// above did not already claim.
var metricPair = regexp.MustCompile(`([\d.eE+-]+) ([A-Za-z][\w/+-]*)`)

// standardUnits are the testing-package columns parsed into dedicated
// fields; everything else lands in Benchmark.Metrics.
var standardUnits = map[string]bool{"ns/op": true, "MB/s": true, "B/op": true, "allocs/op": true}

// variantPairs maps a baseline name fragment to the fragments of its
// optimised counterparts; applied as string substitutions on bench names.
var variantPairs = [][2]string{
	{"Scalar", "WC"},         // ScatterScalar → ScatterWC
	{"Scalar", "Batch"},      // ProbeScalar → ProbeBatch
	{"scalar", "wc"},         // Partition/scalar/... → Partition/wc/...
	{"barrier", "pipelined"}, // PipelineJoin/barrier → PipelineJoin/pipelined
	{"off", "rotate"},        // NetschedSweep/.../off → .../rotate
	{"off", "weighted"},      // NetschedSweep/.../off → .../weighted
	{"off", "engine"},        // SkewSweep/.../off → .../engine
}

func main() {
	baseline := flag.String("baseline", "", "compare against this previously emitted JSON report")
	threshold := flag.Float64("threshold", 0.10, "flag benchmarks whose ns/op grew by more than this fraction")
	flag.Parse()

	rep := parse(bufio.NewScanner(os.Stdin))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}
	base, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
	regs := regressions(base.Benchmarks, rep.Benchmarks, *threshold)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchfmt: no regressions over %.0f%% vs %s\n", *threshold*100, *baseline)
		return
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "benchfmt: REGRESSION", r)
	}
	os.Exit(1)
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// regressions lists benchmarks present in both reports whose ns/op grew
// by more than threshold (a fraction). Benchmarks that appear in only
// one report are ignored: the gate compares like with like.
func regressions(base, cur []Benchmark, threshold float64) []string {
	byName := make(map[string]Benchmark, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	var out []string
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok || b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			continue
		}
		if ratio := c.NsPerOp / b.NsPerOp; ratio > 1+threshold {
			out = append(out, fmt.Sprintf("%s: %.0f → %.0f ns/op (%+.1f%%)",
				c.Name, b.NsPerOp, c.NsPerOp, (ratio-1)*100))
		}
	}
	return out
}

func parse(sc *bufio.Scanner) *Report {
	rep := &Report{}
	pkg := ""
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			b := Benchmark{Name: m[1], Pkg: pkg}
			b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				b.MBPerS, _ = strconv.ParseFloat(m[4], 64)
			}
			if m[5] != "" {
				b.BPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			if m[6] != "" {
				b.AllocsOp, _ = strconv.ParseInt(m[6], 10, 64)
			}
			for _, mm := range metricPair.FindAllStringSubmatch(line, -1) {
				if standardUnits[mm[2]] {
					continue
				}
				v, err := strconv.ParseFloat(mm[1], 64)
				if err != nil {
					continue
				}
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[mm[2]] = v
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	rep.Speedups = speedups(rep.Benchmarks)
	return rep
}

func speedups(benches []Benchmark) []Speedup {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Speedup
	for _, base := range benches {
		for _, pair := range variantPairs {
			if !strings.Contains(base.Name, pair[0]) {
				continue
			}
			variant, ok := byName[strings.Replace(base.Name, pair[0], pair[1], 1)]
			if !ok || variant.NsPerOp == 0 {
				continue
			}
			out = append(out, Speedup{
				Name:     variant.Name,
				Baseline: base.Name,
				Speedup:  base.NsPerOp / variant.NsPerOp,
			})
		}
	}
	return out
}
