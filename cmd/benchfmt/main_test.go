package main

import (
	"bufio"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: rackjoin/internal/radix
cpu: AMD EPYC 7B13
BenchmarkKernelScatterScalar/w16/bits10-1         	      18	  66000000 ns/op	1000.00 MB/s
BenchmarkKernelScatterWC/w16/bits10-1             	      36	  33000000 ns/op	2000.00 MB/s	16 B/op	       2 allocs/op
BenchmarkKernelPartition/scalar/w16/bits10-1      	      12	  90000000 ns/op	 745.00 MB/s
BenchmarkKernelPartition/wc/w16/bits10-1          	      16	  60000000 ns/op	1117.00 MB/s
BenchmarkKernelProbeScalar/n65536-1               	     500	   2000000 ns/op	 555.00 MB/s
BenchmarkKernelProbeBatch/n65536-1                	     600	   1700000 ns/op	 651.00 MB/s
PASS
ok  	rackjoin/internal/radix	95.2s
`

func TestParse(t *testing.T) {
	rep := parse(bufio.NewScanner(strings.NewReader(sample)))
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header mis-parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 6 {
		t.Fatalf("parsed %d benchmarks, want 6", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Name != "KernelScatterWC/w16/bits10" || b.Iterations != 36 ||
		b.NsPerOp != 33000000 || b.MBPerS != 2000 || b.BPerOp != 16 || b.AllocsOp != 2 {
		t.Fatalf("line mis-parsed: %+v", b)
	}
	if b.Pkg != "rackjoin/internal/radix" {
		t.Fatalf("pkg mis-parsed: %q", b.Pkg)
	}
}

func TestSpeedups(t *testing.T) {
	rep := parse(bufio.NewScanner(strings.NewReader(sample)))
	want := map[string]float64{
		"KernelScatterWC/w16/bits10":    2.0,
		"KernelPartition/wc/w16/bits10": 1.5,
		"KernelProbeBatch/n65536":       2000000.0 / 1700000.0,
	}
	if len(rep.Speedups) != len(want) {
		t.Fatalf("got %d speedups %+v, want %d", len(rep.Speedups), rep.Speedups, len(want))
	}
	for _, s := range rep.Speedups {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected speedup pair %+v", s)
			continue
		}
		if math.Abs(s.Speedup-w) > 1e-9 {
			t.Errorf("%s: speedup %v, want %v", s.Name, s.Speedup, w)
		}
	}
}

func TestRegressions(t *testing.T) {
	base := []Benchmark{
		{Name: "KernelScatterWC/w16/bits10", NsPerOp: 1000},
		{Name: "KernelProbeBatch/n65536", NsPerOp: 2000},
		{Name: "RemovedBench", NsPerOp: 500},
	}
	cur := []Benchmark{
		{Name: "KernelScatterWC/w16/bits10", NsPerOp: 1050}, // +5%: within threshold
		{Name: "KernelProbeBatch/n65536", NsPerOp: 2500},    // +25%: regression
		{Name: "NewBench", NsPerOp: 9999},                   // no baseline: ignored
	}
	regs := regressions(base, cur, 0.10)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want 1", len(regs), regs)
	}
	if !strings.Contains(regs[0], "KernelProbeBatch/n65536") || !strings.Contains(regs[0], "+25.0%") {
		t.Errorf("regression line %q", regs[0])
	}

	// Exactly at the threshold is not a regression; just past it is.
	atEdge := regressions(
		[]Benchmark{{Name: "b", NsPerOp: 1000}},
		[]Benchmark{{Name: "b", NsPerOp: 1100}}, 0.10)
	if len(atEdge) != 0 {
		t.Errorf("+10.0%% flagged at 10%% threshold: %v", atEdge)
	}
	past := regressions(
		[]Benchmark{{Name: "b", NsPerOp: 1000}},
		[]Benchmark{{Name: "b", NsPerOp: 1101}}, 0.10)
	if len(past) != 1 {
		t.Errorf("+10.1%% not flagged at 10%% threshold")
	}

	// Zero/negative ns/op never divides.
	if got := regressions(
		[]Benchmark{{Name: "b", NsPerOp: 0}},
		[]Benchmark{{Name: "b", NsPerOp: 100}}, 0.10); len(got) != 0 {
		t.Errorf("zero baseline flagged: %v", got)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	rep := parse(bufio.NewScanner(strings.NewReader(sample)))
	path := t.TempDir() + "/bench.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d vs %d", len(got.Benchmarks), len(rep.Benchmarks))
	}
	if regs := regressions(got.Benchmarks, rep.Benchmarks, 0.10); len(regs) != 0 {
		t.Errorf("identical reports show regressions: %v", regs)
	}
	if _, err := loadReport(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing baseline should fail")
	}
}

const netschedSample = `goos: linux
pkg: rackjoin
BenchmarkNetschedSweep/m16/off-8         	       2	 950000000 ns/op	         1.671 sim-net-s	        76.90 maxq-ms
BenchmarkNetschedSweep/m16/weighted-8    	       2	 800000000 ns/op	         1.389 sim-net-s	         0.05 maxq-ms
PASS
`

func TestParseCustomMetrics(t *testing.T) {
	rep := parse(bufio.NewScanner(strings.NewReader(netschedSample)))
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	off := rep.Benchmarks[0]
	if off.Metrics["sim-net-s"] != 1.671 || off.Metrics["maxq-ms"] != 76.90 {
		t.Fatalf("custom metrics mis-parsed: %+v", off.Metrics)
	}
	if _, ok := off.Metrics["ns/op"]; ok {
		t.Fatal("standard ns/op column leaked into Metrics")
	}
	if len(rep.Speedups) != 1 || rep.Speedups[0].Name != "NetschedSweep/m16/weighted" {
		t.Fatalf("off→weighted pair not formed: %+v", rep.Speedups)
	}
	if math.Abs(rep.Speedups[0].Speedup-950000000.0/800000000.0) > 1e-9 {
		t.Fatalf("wrong speedup: %+v", rep.Speedups[0])
	}
}
