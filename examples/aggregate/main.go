// Aggregate: a distributed GROUP BY over the rack — the paper's Section 7
// generalisation of its RDMA techniques to other database operators. A
// sales-fact-style relation (product key, amount as rid) is grouped by key
// with COUNT(*) and SUM across 4 machines; partial aggregates travel in
// pooled RDMA buffers exactly like the join's partitions. This example
// also demonstrates the join's remote result materialisation (§4.3):
// joined rows shipped to a coordinator machine in RDMA output buffers.
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"rackjoin"
)

const machines = 4

func main() {
	log.SetFlags(0)

	cluster, err := rackjoin.NewCluster(machines, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// "Sales" rows: 1M rows over 4096 products; rid doubles as the sale
	// amount.
	_, sales := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: 4096, OuterTuples: 1 << 20, Seed: 7,
	}, machines)

	for _, pre := range []bool{true, false} {
		cfg := rackjoin.DefaultAggConfig()
		cfg.PreAggregate = pre
		res, err := rackjoin.Aggregate(cluster, sales, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pre-aggregate=%-5v: %d groups over %d rows, %.2f MB exchanged, %s\n",
			pre, res.Groups, res.Rows, float64(res.BytesSent)/(1<<20), res.Phases)
	}

	// Remote result materialisation: join the sales against the product
	// dimension and ship all joined rows to machine 0 (the coordinator)
	// through RDMA-enabled output buffers.
	fmt.Println("\njoin with results shipped to machine 0 (§4.3):")
	products, sales2 := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: 4096, OuterTuples: 1 << 18, Seed: 8,
	}, machines)
	var shipped atomic.Int64
	jcfg := rackjoin.DefaultJoinConfig()
	jcfg.ResultTarget = 0
	jcfg.ResultSink = func(machine int, records []byte) {
		if machine != 0 {
			log.Fatalf("records arrived on machine %d", machine)
		}
		shipped.Add(int64(len(records) / 24))
	}
	res, err := rackjoin.Join(cluster, products, sales2, jcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d matches; %d result records collected at machine 0\n",
		res.Matches, shipped.Load())
}
