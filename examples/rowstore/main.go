// Rowstore: the wide-tuple workloads of Section 6.7. Row stores carry the
// full tuple through the join instead of a <key, rid> pair; the paper
// shows the join is bound by data volume, not tuple count: halving the
// tuple count while doubling the width leaves the execution time
// unchanged. This example demonstrates it at laptop scale (same bytes,
// widths 16/32/64) and at paper scale via the simulator, and also shows
// result materialisation through a ResultSink.
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"rackjoin"
)

const (
	machines   = 4
	cores      = 4
	totalBytes = 64 << 20 // per relation, constant across widths
)

func main() {
	log.SetFlags(0)

	cluster, err := rackjoin.NewCluster(machines, cores)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Println("constant data volume, varying tuple width (laptop scale):")
	for _, width := range []int{16, 32, 64} {
		n := totalBytes / width
		inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
			InnerTuples: n / 4,
			OuterTuples: n,
			TupleWidth:  width,
			Seed:        int64(width),
		}, machines)
		want := rackjoin.ExpectedJoin(outer)
		res, err := rackjoin.Join(cluster, inner, outer, rackjoin.DefaultJoinConfig())
		if err != nil {
			log.Fatal(err)
		}
		ok := res.Matches == want.Matches && res.Checksum == want.Checksum
		fmt.Printf("  %2d-byte tuples (%8d rows): %s net=%.0f MB ok=%v\n",
			width, n, res.Phases, float64(res.Net.BytesSent)/(1<<20), ok)
	}

	fmt.Println("\npaper scale (simulator, 4 QDR machines, 32 GB per relation):")
	for _, tc := range []struct {
		tuples int64
		width  int
	}{{2048 << 20, 16}, {1024 << 20, 32}, {512 << 20, 64}} {
		r, err := rackjoin.Simulate(rackjoin.SimConfig{
			Machines: 4, Cores: 8, Net: rackjoin.QDR(),
			RTuples: tc.tuples, STuples: tc.tuples, TupleWidth: tc.width,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4dM × %2d-byte tuples: %.2f s\n",
			tc.tuples>>20, tc.width, r.Phases.Total().Seconds())
	}

	// Materialisation: stream the joined <key, innerRID, outerRID>
	// records out of the join through a sink.
	fmt.Println("\nmaterialising results of a 64-byte-tuple join:")
	inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: 1 << 14, OuterTuples: 1 << 16, TupleWidth: 64, Seed: 1,
	}, machines)
	var records atomic.Int64
	cfg := rackjoin.DefaultJoinConfig()
	cfg.ResultSink = func(machine int, recs []byte) {
		records.Add(int64(len(recs) / 24))
	}
	res, err := rackjoin.Join(cluster, inner, outer, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d matches, %d records materialised across %d machines\n",
		res.Matches, records.Load(), machines)
}
