// Quickstart: run one distributed radix hash join on a 4-machine
// in-process RDMA cluster and verify the result.
package main

import (
	"fmt"
	"log"

	"rackjoin"
)

func main() {
	log.SetFlags(0)

	// A rack of 4 machines × 4 cores connected by the in-process RDMA
	// fabric. Machines have private memory; all data movement between
	// them goes through RDMA verbs.
	cluster, err := rackjoin.NewCluster(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A highly-distinct-value workload (Section 6.1.1): the inner
	// relation holds 1M distinct keys, the outer 4M foreign keys, evenly
	// loaded across the machines with range-partitioned record ids.
	inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: 1 << 20,
		OuterTuples: 1 << 22,
		Seed:        42,
	}, 4)

	// Run the paper's distributed radix hash join: histogram exchange,
	// RDMA network partitioning pass, local partitioning, build-probe.
	res, err := rackjoin.Join(cluster, inner, outer, rackjoin.DefaultJoinConfig())
	if err != nil {
		log.Fatal(err)
	}

	want := rackjoin.ExpectedJoin(outer)
	fmt.Printf("matches:   %d (expected %d)\n", res.Matches, want.Matches)
	fmt.Printf("phases:    %s\n", res.Phases)
	fmt.Printf("network:   %.1f MB in %d messages\n",
		float64(res.Net.BytesSent)/(1<<20), res.Net.Messages)
	if res.Matches != want.Matches || res.Checksum != want.Checksum {
		log.Fatal("verification failed")
	}
	fmt.Println("verification OK")
}
