// Pipeline: the join as part of an operator pipeline (§7: "we treated the
// join operation as part of an operator pipeline in which the result of
// the join is materialized at a later point in the query execution").
//
// The query is a two-stage star-schema aggregate:
//
//	SELECT key, COUNT(*) FROM products ⋈ sales GROUP BY key
//
// Stage 1 runs the distributed RDMA join with local result
// materialisation; each machine's sink builds its chunk of the
// intermediate relation in place (no extra movement — data is already
// partitioned by key from the join). Stage 2 runs the distributed
// aggregation over the intermediate.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"rackjoin"
)

const machines = 4

func main() {
	log.SetFlags(0)

	cluster, err := rackjoin.NewCluster(machines, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	products, sales := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: 1 << 12, OuterTuples: 1 << 19, Seed: 11,
	}, machines)

	// Stage 1: join, materialising <key, productRID, saleRID> records on
	// each producing machine into per-machine byte buffers.
	var mu sync.Mutex
	chunks := make([][]byte, machines)
	cfg := rackjoin.DefaultJoinConfig()
	cfg.ResultSink = func(machine int, records []byte) {
		mu.Lock()
		chunks[machine] = append(chunks[machine], records...)
		mu.Unlock()
	}
	joinRes, err := rackjoin.Join(cluster, products, sales, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1 (join):      %d matches, %s\n", joinRes.Matches, joinRes.Phases)

	// Build the intermediate distributed relation: one 16-byte tuple
	// <key, saleRID> per join result, resident where it was produced.
	inter := &rackjoin.DistributedRelation{}
	for m := 0; m < machines; m++ {
		n := len(chunks[m]) / 24
		chunk := newRelation(n)
		for i := 0; i < n; i++ {
			rec := chunks[m][i*24:]
			chunk.SetKey(i, binary.LittleEndian.Uint64(rec))
			chunk.SetRID(i, binary.LittleEndian.Uint64(rec[16:]))
		}
		inter.Chunks = append(inter.Chunks, chunk)
	}

	// Stage 2: distributed GROUP BY over the intermediate.
	aggRes, err := rackjoin.Aggregate(cluster, inter, rackjoin.DefaultAggConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2 (aggregate): %d groups over %d joined rows, %.2f MB exchanged\n",
		aggRes.Groups, aggRes.Rows, float64(aggRes.BytesSent)/(1<<20))

	if aggRes.Rows != joinRes.Matches {
		log.Fatalf("pipeline lost rows: %d aggregated vs %d joined", aggRes.Rows, joinRes.Matches)
	}
	if aggRes.Groups != 1<<12 {
		log.Fatalf("expected %d product groups, got %d", 1<<12, aggRes.Groups)
	}
	fmt.Println("pipeline verification OK")
}

func newRelation(n int) *rackjoin.Relation {
	// 16-byte <key, rid> tuples.
	r, err := rackjoin.ViewRelation(16, make([]byte, n*16))
	if err != nil {
		log.Fatal(err)
	}
	return r
}
