// Analytics: the small-to-large foreign-key joins of a star-schema
// analytics workload (Section 6.4.2) — a fixed large fact table joined
// against dimension tables of decreasing size (ratios 1:1 to 1:16),
// compared across transports, plus the paper-scale prediction for the same
// shape from the analytical model.
package main

import (
	"fmt"
	"log"

	"rackjoin"
)

const (
	machines = 4
	cores    = 4
	factRows = 1 << 22 // the outer ("fact") relation stays fixed
)

func main() {
	log.SetFlags(0)

	cluster, err := rackjoin.NewCluster(machines, cores)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Println("small-to-large joins: dimension ⋈ fact (fact fixed at 4M tuples)")
	fmt.Println()
	for _, ratio := range []int{1, 2, 4, 8, 16} {
		dimRows := factRows / ratio
		inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
			InnerTuples: dimRows,
			OuterTuples: factRows,
			Seed:        int64(ratio),
		}, machines)
		want := rackjoin.ExpectedJoin(outer)

		res, err := rackjoin.Join(cluster, inner, outer, rackjoin.DefaultJoinConfig())
		if err != nil {
			log.Fatal(err)
		}
		ok := res.Matches == want.Matches && res.Checksum == want.Checksum
		fmt.Printf("1:%-2d  %8d ⋈ %8d  %s  ok=%v\n", ratio, dimRows, factRows, res.Phases, ok)
	}

	// The same shape at paper scale, from the analytical model: outer
	// fixed at 2048M tuples on the 4-machine QDR rack (Figure 6b).
	fmt.Println("\npaper-scale prediction (QDR, 4 machines, outer = 2048M tuples):")
	sys := rackjoin.NewModel(4, 8, rackjoin.QDR())
	for _, ratio := range []int{1, 2, 4, 8} {
		w := rackjoin.ModelWorkloadTuples(int64(2048/ratio)<<20, 2048<<20, 16)
		fmt.Printf("1:%-2d  predicted %.2f s\n", ratio, sys.Predict(w).Total().Seconds())
	}

	// Transport comparison on the 1:4 workload.
	fmt.Println("\ntransport comparison (1:4 workload):")
	inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: factRows / 4, OuterTuples: factRows, Seed: 99,
	}, machines)
	for _, tr := range []rackjoin.Transport{rackjoin.TwoSided, rackjoin.OneSided, rackjoin.Stream} {
		cfg := rackjoin.DefaultJoinConfig()
		cfg.Transport = tr
		res, err := rackjoin.Join(cluster, inner, outer, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %s  (%d messages)\n", tr, res.Phases, res.Net.Messages)
	}
}
