// Skew: the Zipf-skewed workloads of Section 6.5 — a popular-products
// foreign-key column where a handful of keys dominate. Shows the paper's
// two countermeasures (the dynamic size-sorted partition assignment and
// build-probe task splitting), how the partition→machine assignment
// balance changes, and the skew engine on top: streaming heavy-hitter
// detection during the histogram phase and split-and-replicate
// repartitioning of the hot partitions (DESIGN.md §15).
package main

import (
	"fmt"
	"log"

	"rackjoin"
)

const (
	machines = 4
	cores    = 4
)

func main() {
	log.SetFlags(0)

	cluster, err := rackjoin.NewCluster(machines, cores)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	for _, skew := range []struct {
		name   string
		factor float64
	}{
		{"uniform", 0},
		{"low skew (Zipf 1.05)", rackjoin.SkewLow},
		{"high skew (Zipf 1.20)", rackjoin.SkewHigh},
	} {
		inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
			InnerTuples: 1 << 14, // small dimension: hot keys repeat a lot
			OuterTuples: 1 << 21,
			Skew:        skew.factor,
			Seed:        7,
		}, machines)
		want := rackjoin.ExpectedJoin(outer)
		fmt.Printf("%s:\n", skew.name)

		for _, cfg := range []struct {
			label string
			join  rackjoin.JoinConfig
		}{
			{"static round-robin           ", rackjoin.DefaultJoinConfig()},
			{"size-sorted + probe splitting", withSkewHandling()},
			{"+ inter-machine work sharing ", withWorkSharing()},
			{"skew engine (detect only)    ", withSkewEngine(rackjoin.SkewModeDetect)},
			{"skew engine (split+replicate)", withSkewEngine(rackjoin.SkewModeSplit)},
		} {
			res, err := rackjoin.Join(cluster, inner, outer, cfg.join)
			if err != nil {
				log.Fatal(err)
			}
			ok := res.Matches == want.Matches && res.Checksum == want.Checksum
			fmt.Printf("  %s  %s  parts/machine=%v ok=%v\n",
				cfg.label, res.Phases, res.PartitionsPerMachine, ok)
			if res.Skew.Mode != rackjoin.SkewModeOff {
				// The detector's verdict rides on the join result: how many
				// heavy hitters the space-saving sketch surfaced, which
				// partitions were split-and-replicated, and what the
				// replication cost on the wire.
				fmt.Printf("      detector: heavy-hitters=%d split-partitions=%v replicated=%d B task-splits=%d\n",
					len(res.Skew.HeavyHitters), res.Skew.SplitPartitions,
					res.Skew.ReplicatedBytes, res.Skew.TaskSplits)
				for _, h := range res.Skew.HeavyHitters {
					fmt.Printf("        hot key %d: ~%d occurrences\n", h.Key, h.Count)
				}
			}
		}
	}

	// At paper scale the skew effect is dramatic (Figure 8): the machine
	// owning the hottest partition dominates both the network pass (all
	// senders funnel into its ingress link) and the local processing.
	// Inter-machine work sharing — the fix the paper proposes as future
	// work — restores scalability via selective broadcast; the skew
	// engine goes further by splitting exactly the heavy-hitter
	// partitions and dealing their probe side round-robin.
	fmt.Println("\npaper-scale simulation (128M ⋈ 2048M on 4 QDR machines):")
	for _, z := range []float64{0, rackjoin.SkewLow, rackjoin.SkewHigh} {
		base := rackjoin.SimConfig{
			Machines: 4, Cores: 8, Net: rackjoin.QDR(),
			RTuples: 128 << 20, STuples: 2048 << 20,
			Skew: z, SizeSortedAssignment: true, SkewSplit: true,
		}
		r, err := rackjoin.Simulate(base)
		if err != nil {
			log.Fatal(err)
		}
		base.BroadcastFactor = 4
		shared, err := rackjoin.Simulate(base)
		if err != nil {
			log.Fatal(err)
		}
		base.BroadcastFactor = 0
		base.SkewEngine = true
		engine, err := rackjoin.Simulate(base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  zipf %.2f: total %.2f s (net %.2f s, local %.2f s) → %.2f s with work sharing → %.2f s with the skew engine (%d partitions split)\n",
			z, r.Phases.Total().Seconds(),
			r.Phases.NetworkPartition.Seconds(), r.Phases.LocalPartition.Seconds(),
			shared.Phases.Total().Seconds(), engine.Phases.Total().Seconds(),
			len(engine.Detail.SplitPartitions))
	}
}

// withSkewEngine enables the streaming heavy-hitter detector; in
// SkewModeSplit the hot partitions are split-and-replicated and probe
// tasks become splittable mid-run.
func withSkewEngine(mode rackjoin.SkewMode) rackjoin.JoinConfig {
	cfg := rackjoin.DefaultJoinConfig()
	cfg.Assignment = rackjoin.SizeSorted
	cfg.Skew = mode
	return cfg
}

func withSkewHandling() rackjoin.JoinConfig {
	cfg := rackjoin.DefaultJoinConfig()
	cfg.Assignment = rackjoin.SizeSorted
	cfg.SkewSplitFactor = 2 // split above 2× the average, as in Section 6.5
	return cfg
}

func withWorkSharing() rackjoin.JoinConfig {
	cfg := withSkewHandling()
	cfg.BroadcastFactor = 4 // selective broadcast of dominant partitions
	return cfg
}
