GO ?= go

.PHONY: build test race checkptr vet rackvet bench bench-kernels bench-pipeline bench-netsched bench-skew bench-baseline trace-overhead faultcheck check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Every package under the race detector: the scheduler, pipeline, and
# observability plane share mutable state across goroutines, and the
# cheap packages add negligible time on top of ./internal/core.
race:
	$(GO) test -race ./...

# Dynamic unsafe.Pointer validation (-d=checkptr is implied by -race on
# amd64/arm64, but an explicit non-race run catches alignment and
# arithmetic violations with exact failure points) on the packages that
# use unsafe: the word-store kernels and the hot loops built on them.
checkptr:
	$(GO) test -gcflags=all=-d=checkptr ./internal/radix ./internal/relation \
		./internal/hashtable ./internal/core

vet:
	$(GO) vet ./...

# rackvet is the repo's own static-analysis suite (internal/analyzers,
# DESIGN.md §11 and §16): buffer-pool lifecycle, span begin/end balance,
# atomics discipline, unsafe.Pointer keep-alive rules, metric naming,
# lock ordering, goroutine lifecycle, and hot-path allocation. Blocking:
# a finding fails check and CI. rackvet.json is the machine-readable
# findings report CI uploads as an artifact.
rackvet:
	$(GO) run ./cmd/rackvet -json-out rackvet.json ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# Kernel microbenchmarks (scalar vs write-combining scatter, scalar vs
# batched probe), formatted into BENCH_kernels.json by cmd/benchfmt.
# Override BENCHTIME for quick smoke runs (e.g. BENCHTIME=1x in CI).
BENCHTIME ?= 1s
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkKernel' -benchtime $(BENCHTIME) -timeout 30m \
		./internal/radix ./internal/hashtable | $(GO) run ./cmd/benchfmt > BENCH_kernels.json
	@echo "wrote BENCH_kernels.json"

# Barrier vs partition-ready pipelining on a throttled sim fabric
# (DESIGN.md §10), formatted into BENCH_pipeline.json; the
# barrier→pipelined speedup entry is the headline number. One `go test`
# process per variant: whichever variant runs second in a shared process
# re-faults ~100 MB of scavenged slab pages inside the timed loop (see
# bench_pipeline_test.go), which would skew the comparison.
bench-pipeline:
	( $(GO) test -run '^$$' -bench 'BenchmarkPipelineJoin/barrier' -benchtime $(BENCHTIME) -timeout 30m . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkPipelineJoin/pipelined' -benchtime $(BENCHTIME) -timeout 30m . ) \
		| $(GO) run ./cmd/benchfmt > BENCH_pipeline.json
	@echo "wrote BENCH_pipeline.json"

# Scheduled vs unscheduled network pass at 16–64 simulated machines
# (DESIGN.md §13), formatted into BENCH_netsched.json. ns/op carries the
# deterministic simulated network-pass time (not host time), so the
# off→rotate/off→weighted speedup pairs compare modeled performance.
bench-netsched:
	$(GO) test -run '^$$' -bench 'BenchmarkNetschedSweep' -benchtime $(BENCHTIME) -timeout 30m . \
		| $(GO) run ./cmd/benchfmt > BENCH_netsched.json
	@echo "wrote BENCH_netsched.json"

# Skew engine off vs on across a Zipf sweep at 16 simulated machines
# (DESIGN.md §15), formatted into BENCH_skew.json. ns/op carries the
# deterministic simulated join time, so the off→engine speedup pairs and
# the TestSkewBaselineJSON acceptance gate compare modeled performance.
bench-skew:
	$(GO) test -run '^$$' -bench 'BenchmarkSkewSweep' -benchtime $(BENCHTIME) -timeout 30m . \
		| $(GO) run ./cmd/benchfmt > BENCH_skew.json
	@echo "wrote BENCH_skew.json"

# Advisory regression gate: rerun the kernel benchmarks and flag any
# result more than 10% slower than the checked-in BENCH_kernels.json.
# Exits non-zero on regressions; `check` runs it best-effort (benchmark
# noise on shared machines is not a build failure).
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkKernel' -benchtime $(BENCHTIME) -timeout 30m \
		./internal/radix ./internal/hashtable | \
		$(GO) run ./cmd/benchfmt -baseline BENCH_kernels.json > /dev/null
	( $(GO) test -run '^$$' -bench 'BenchmarkPipelineJoin/barrier' -benchtime $(BENCHTIME) -timeout 30m . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkPipelineJoin/pipelined' -benchtime $(BENCHTIME) -timeout 30m . ) \
		| $(GO) run ./cmd/benchfmt -baseline BENCH_pipeline.json > /dev/null
	$(GO) test -run '^$$' -bench 'BenchmarkNetschedSweep' -benchtime $(BENCHTIME) -timeout 30m . \
		| $(GO) run ./cmd/benchfmt -baseline BENCH_netsched.json > /dev/null
	$(GO) test -run '^$$' -bench 'BenchmarkSkewSweep' -benchtime $(BENCHTIME) -timeout 30m . \
		| $(GO) run ./cmd/benchfmt -baseline BENCH_skew.json > /dev/null

# Tracing-overhead smoke bench (DESIGN.md §12): the join with the causal
# tracer + flight recorder mounted vs bare, min-of-N comparison, 2%
# wall-clock budget. Env-gated so plain `go test ./...` stays
# deterministic; `check` runs it best-effort (noise is not a failure).
trace-overhead:
	RACKJOIN_TRACE_OVERHEAD=1 $(GO) test -run TestTraceOverheadBudget -v -count=1 .

# Fault-injected validation of the health plane (DESIGN.md §14): every
# injected fault at 8–64 machines must produce the matching detector
# naming the injected culprit, and clean runs across all transport
# modes must stay diagnosis-free. Blocking: a miss or a false positive
# fails check and CI.
faultcheck:
	$(GO) test -run 'TestFaultInjectionSweep|TestCleanRunsQuiet' -count=1 -v ./internal/health

check: build vet rackvet test race faultcheck
	-$(MAKE) bench-baseline BENCHTIME=1x
	-$(MAKE) trace-overhead
