GO ?= go

.PHONY: build test race vet bench bench-kernels check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The trace recorder and metrics registry are the shared mutable state of
# every run; the kernel equivalence/property tests exercise the unsafe
# scatter and batched-probe paths. Hammer all of them under the race
# detector.
race:
	$(GO) test -race ./internal/trace ./internal/metrics \
		./internal/radix ./internal/hashtable ./internal/core

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# Kernel microbenchmarks (scalar vs write-combining scatter, scalar vs
# batched probe), formatted into BENCH_kernels.json by cmd/benchfmt.
# Override BENCHTIME for quick smoke runs (e.g. BENCHTIME=1x in CI).
BENCHTIME ?= 1s
bench-kernels:
	$(GO) test -run '^$$' -bench 'BenchmarkKernel' -benchtime $(BENCHTIME) -timeout 30m \
		./internal/radix ./internal/hashtable | $(GO) run ./cmd/benchfmt > BENCH_kernels.json
	@echo "wrote BENCH_kernels.json"

check: build vet test race
