GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The trace recorder and metrics registry are the shared mutable state of
# every run; hammer them under the race detector.
race:
	$(GO) test -race ./internal/trace ./internal/metrics

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$'
