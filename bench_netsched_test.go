// Benchmark of application-level network scheduling (DESIGN.md §13): the
// paper-scale 2048M ⋈ 2048M skewed join simulated at 16–64 machines on
// FDR with receiver-side switch contention modeled, once unscheduled and
// once per schedule policy. The scheduled variants bound the per-link
// ingress queueing delay at one pairing round and dodge the contention
// collapse, so their network pass should undercut the unscheduled one.
//
// `make bench-netsched` formats the sweep into BENCH_netsched.json via
// cmd/benchfmt: the off→rotate / off→weighted variant pairs yield the
// speedups, and the sim-net-s / maxq-ms columns record the modeled
// network-pass seconds and the max per-link queueing delay.
package rackjoin_test

import (
	"fmt"
	"testing"

	"rackjoin"
)

func benchNetschedSim(b *testing.B, machines int, policy rackjoin.NetSchedPolicy) {
	b.Helper()
	cfg := rackjoin.SimConfig{
		Machines: machines, Cores: 8, Net: rackjoin.FDR(),
		RTuples: 2048 << 20, STuples: 2048 << 20,
		Skew: 1.05, SizeSortedAssignment: true, SkewSplit: true,
		NetSched: policy, SwitchContention: 0.03,
	}
	var netSec, maxQ float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rackjoin.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		netSec = res.Phases.NetworkPartition.Seconds()
		maxQ = res.MaxLinkQueueSec
	}
	// The deterministic simulated network-pass time is the figure of
	// merit, so it overrides the (noisy, host-side) ns/op column: the
	// benchfmt off→rotate/off→weighted speedups and the bench-baseline
	// regression gate then compare simulated performance, not how fast
	// this host happens to run the simulator.
	b.ReportMetric(netSec*1e9, "ns/op")
	b.ReportMetric(netSec, "sim-net-s")
	b.ReportMetric(maxQ*1e3, "maxq-ms")
}

func BenchmarkNetschedSweep(b *testing.B) {
	for _, nm := range []int{16, 32, 64} {
		for _, pol := range []rackjoin.NetSchedPolicy{
			rackjoin.NetSchedOff, rackjoin.NetSchedRotate, rackjoin.NetSchedWeighted,
		} {
			nm, pol := nm, pol
			b.Run(fmt.Sprintf("m%d/%v", nm, pol), func(b *testing.B) {
				benchNetschedSim(b, nm, pol)
			})
		}
	}
}
