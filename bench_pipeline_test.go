// Benchmark of the partition-ready execution pipeline (DESIGN.md §10):
// the same Zipf-skewed distributed join on a bandwidth-throttled fabric,
// once with the classic post-network-pass barrier and once pipelined.
// With the fabric as the bottleneck the pipelined run hides the local
// partitioning and most of the build-probe work inside the network pass,
// so its wall clock should undercut the barrier run's by well over 10%.
//
// `make bench-pipeline` formats the pair into BENCH_pipeline.json via
// cmd/benchfmt (the barrier→pipelined variant pair yields the speedup).
// It runs each variant in its own `go test` process: every Join retires
// ~100 MB of slabs, and whichever variant runs second in a shared process
// re-faults the scavenged heap pages during region allocation, inflating
// its numbers by ~20% regardless of which variant it is.
package rackjoin_test

import (
	"testing"
	"time"

	"rackjoin"
)

func benchPipelineJoin(b *testing.B, pipelined bool) {
	b.Helper()
	const (
		machines = 4
		cores    = 4
		// Cap each host's egress/ingress so the network pass is the
		// long pole — the regime the pipeline targets (a rack fabric
		// saturated by an all-to-all repartition). ~3.8 MB leaves each
		// host and pays both the egress and the ingress meter, so the
		// pass runs for ~200 ms: the barrier run idles through it, the
		// pipelined run joins through it.
		fabricMBs = 128
	)
	c, err := rackjoin.NewThrottledCluster(machines, cores, fabricMBs*1e6)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: 1 << 18, OuterTuples: 1 << 20, Seed: 2015, Skew: 1.20,
	}, machines)
	want := rackjoin.ExpectedJoin(outer)
	cfg := rackjoin.DefaultJoinConfig()
	cfg.Pipeline = pipelined
	cfg.Assignment = rackjoin.SizeSorted
	cfg.SkewSplitFactor = 2
	// Deep send pools decouple the scatter from the fabric: partition
	// threads finish writing (and the local slab shares complete) at CPU
	// speed while the lanes drain at the throttled rate. Injection is
	// gated on the local shares, so this is what opens the overlap
	// window; the barrier run gets the same pools for a fair comparison.
	cfg.BuffersPerPartition = 8
	b.SetBytes(int64(inner.Size() + outer.Size()))
	var busy, overlap time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rackjoin.Join(c, inner, outer, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Matches != want.Matches || res.Checksum != want.Checksum {
			b.Fatalf("wrong result: %d matches", res.Matches)
		}
		busy += res.Phases.NetworkPartition + res.Phases.LocalPartition + res.Phases.BuildProbe
		for _, o := range res.PipelineOverlap {
			if o > overlap {
				overlap = o
			}
		}
	}
	n := float64(b.N)
	b.ReportMetric(busy.Seconds()/n*1e3, "net+join-ms/op")
	b.ReportMetric(overlap.Seconds()*1e3, "max-overlap-ms")
}

func BenchmarkPipelineJoin(b *testing.B) {
	b.Run("barrier", func(b *testing.B) { benchPipelineJoin(b, false) })
	b.Run("pipelined", func(b *testing.B) { benchPipelineJoin(b, true) })
}
