// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerated through internal/experiments — the same runners
// cmd/experiments uses), plus micro-benchmarks of every substrate layer
// (radix kernels, hash tables, RDMA verbs, baselines, distributed join).
//
// Figure benchmarks execute the full paper-scale simulation sweep once per
// iteration; their tables are printed by `go run ./cmd/experiments -all`
// and recorded in EXPERIMENTS.md.
package rackjoin_test

import (
	"io"
	"testing"

	"rackjoin"
	"rackjoin/internal/datagen"
	"rackjoin/internal/experiments"
	"rackjoin/internal/hashtable"
	"rackjoin/internal/radix"
	"rackjoin/internal/rdma"
	"rackjoin/internal/relation"
)

// --- Table/figure regeneration benches -----------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(io.Discard, id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTab1Symbols(b *testing.B)              { benchExperiment(b, "tab1") }
func BenchmarkFig3Bandwidth(b *testing.B)            { benchExperiment(b, "fig3") }
func BenchmarkFig5aSingleVsDistributed(b *testing.B) { benchExperiment(b, "fig5a") }
func BenchmarkFig5bTransportVariants(b *testing.B)   { benchExperiment(b, "fig5b") }
func BenchmarkFig6aLargeToLarge(b *testing.B)        { benchExperiment(b, "fig6a") }
func BenchmarkFig6bSmallToLarge(b *testing.B)        { benchExperiment(b, "fig6b") }
func BenchmarkFig7aPhaseBreakdown(b *testing.B)      { benchExperiment(b, "fig7a") }
func BenchmarkFig7bIncreasingWorkload(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig8Skew(b *testing.B)                 { benchExperiment(b, "fig8") }
func BenchmarkFig9aModelVsFDR(b *testing.B)          { benchExperiment(b, "fig9a") }
func BenchmarkFig9bModelVsQDR(b *testing.B)          { benchExperiment(b, "fig9b") }
func BenchmarkFig10aCoresQDR(b *testing.B)           { benchExperiment(b, "fig10a") }
func BenchmarkFig10bCoresFDR(b *testing.B)           { benchExperiment(b, "fig10b") }
func BenchmarkSec62BufferSizes(b *testing.B)         { benchExperiment(b, "sec62") }
func BenchmarkSec67WideTuples(b *testing.B)          { benchExperiment(b, "sec67") }
func BenchmarkEq12OptimalCores(b *testing.B)         { benchExperiment(b, "eq12") }
func BenchmarkEq13MaxMachines(b *testing.B)          { benchExperiment(b, "eq13") }

// Ablations (DESIGN.md §5).
func BenchmarkAblInterleaving(b *testing.B) { benchExperiment(b, "abl-interleave") }
func BenchmarkAblTransport(b *testing.B)    { benchExperiment(b, "abl-transport") }
func BenchmarkAblBuffers(b *testing.B)      { benchExperiment(b, "abl-buffers") }
func BenchmarkAblAssignment(b *testing.B)   { benchExperiment(b, "abl-assignment") }
func BenchmarkAblAtomic(b *testing.B)       { benchExperiment(b, "abl-atomic") }
func BenchmarkAblPull(b *testing.B)         { benchExperiment(b, "abl-pull") }
func BenchmarkAblMultipass(b *testing.B)    { benchExperiment(b, "abl-multipass") }
func BenchmarkAblKernels(b *testing.B)      { benchExperiment(b, "abl-kernels") }
func BenchmarkExtAggregation(b *testing.B)  { benchExperiment(b, "ext-agg") }

// --- Distributed join (exec engine, host wall-clock) ---------------------

func benchDistributedJoin(b *testing.B, transport rackjoin.Transport, interleaved bool) {
	b.Helper()
	const machines, cores = 4, 4
	c, err := rackjoin.NewCluster(machines, cores)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	inner, outer := rackjoin.GenerateWorkload(rackjoin.WorkloadConfig{
		InnerTuples: 1 << 18, OuterTuples: 1 << 20, Seed: 1,
	}, machines)
	cfg := rackjoin.DefaultJoinConfig()
	cfg.Transport = transport
	cfg.Interleaved = interleaved
	tuples := float64(inner.Len() + outer.Len())
	b.SetBytes(int64(inner.Size() + outer.Size()))
	var shipped, stalls uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rackjoin.Join(c, inner, outer, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Matches != 1<<20 {
			b.Fatalf("wrong result: %d", res.Matches)
		}
		shipped += res.Net.BytesSent
		stalls += res.Net.PoolStalls
	}
	b.ReportMetric(tuples*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mtuples/s")
	b.ReportMetric(float64(shipped)/float64(b.N)/(1<<20), "MB-shipped/op")
	b.ReportMetric(float64(stalls)/float64(b.N), "pool-stalls/op")
}

func BenchmarkDistributedJoinTwoSided(b *testing.B) {
	benchDistributedJoin(b, rackjoin.TwoSided, true)
}
func BenchmarkDistributedJoinOneSided(b *testing.B) {
	benchDistributedJoin(b, rackjoin.OneSided, true)
}
func BenchmarkDistributedJoinStream(b *testing.B) {
	benchDistributedJoin(b, rackjoin.Stream, false)
}
func BenchmarkDistributedJoinNonInterleaved(b *testing.B) {
	benchDistributedJoin(b, rackjoin.TwoSided, false)
}
func BenchmarkDistributedJoinTCP(b *testing.B) {
	benchDistributedJoin(b, rackjoin.TCP, false)
}
func BenchmarkDistributedJoinOneSidedAtomic(b *testing.B) {
	benchDistributedJoin(b, rackjoin.OneSidedAtomic, true)
}

// --- Single-machine baselines --------------------------------------------

func BenchmarkMCRadixJoin(b *testing.B) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 20, OuterTuples: 1 << 22, Seed: 1})
	b.SetBytes(int64(w.Inner.Size() + w.Outer.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rackjoin.RadixJoin(w.Inner, w.Outer, rackjoin.MCJoinConfig{Pass1Bits: 8, Pass2Bits: 6})
		if err != nil {
			b.Fatal(err)
		}
		if res.Matches != 1<<22 {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkMCSortMergeJoin(b *testing.B) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 20, OuterTuples: 1 << 22, Seed: 1})
	b.SetBytes(int64(w.Inner.Size() + w.Outer.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rackjoin.SortMergeJoin(w.Inner, w.Outer, rackjoin.MCJoinConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Matches != 1<<22 {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkDistributedAggregation(b *testing.B) {
	c, err := rackjoin.NewCluster(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 14, OuterTuples: 1 << 20, Seed: 1})
	rel := relation.Fragment(w.Outer, 4)
	b.SetBytes(int64(w.Outer.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rackjoin.Aggregate(c, rel, rackjoin.DefaultAggConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows != 1<<20 {
			b.Fatal("wrong result")
		}
	}
}

func BenchmarkMCNoPartitionJoin(b *testing.B) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 20, OuterTuples: 1 << 22, Seed: 1})
	b.SetBytes(int64(w.Inner.Size() + w.Outer.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rackjoin.NoPartitionJoin(w.Inner, w.Outer, rackjoin.MCJoinConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Matches != 1<<22 {
			b.Fatal("wrong result")
		}
	}
}

// --- Substrate micro-benchmarks -------------------------------------------

func BenchmarkRadixHistogram(b *testing.B) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 20, OuterTuples: 1, Seed: 1})
	b.SetBytes(int64(w.Inner.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := radix.Histogram(w.Inner, 0, 10)
		if len(h) != 1024 {
			b.Fatal("bad histogram")
		}
	}
}

func BenchmarkRadixScatter(b *testing.B) {
	w := datagen.Generate(datagen.Config{InnerTuples: 1 << 20, OuterTuples: 1, Seed: 1})
	h := radix.Histogram(w.Inner, 0, 10)
	dst := relation.New(w.Inner.Width(), w.Inner.Len())
	b.SetBytes(int64(w.Inner.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cursors, _ := radix.PrefixSum(h)
		radix.Scatter(w.Inner, dst, cursors, 0, 10)
	}
}

func BenchmarkHashTableBuild(b *testing.B) {
	// Cache-sized partition, as after two radix passes.
	w := datagen.Generate(datagen.Config{InnerTuples: 2048, OuterTuples: 1, Seed: 1})
	b.SetBytes(int64(w.Inner.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hashtable.Build(w.Inner).Len() != 2048 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkHashTableProbe(b *testing.B) {
	w := datagen.Generate(datagen.Config{InnerTuples: 2048, OuterTuples: 1 << 14, Seed: 1})
	tbl := hashtable.Build(w.Inner)
	b.SetBytes(int64(w.Outer.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := tbl.ProbeRelation(w.Outer)
		if m != 1<<14 {
			b.Fatal("bad probe")
		}
	}
}

func benchRDMA(b *testing.B, op rdma.Opcode, msgSize int) {
	b.Helper()
	c, err := rackjoin.NewCluster(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	m0, m1 := c.Machine(0), c.Machine(1)
	scq := m0.Dev.NewCQ()
	rcq := m1.Dev.NewCQ()
	qpA, qpB, err := c.ConnectQPs(0, 1,
		rdma.QPConfig{SendCQ: scq, RecvCQ: m0.Dev.NewCQ()},
		rdma.QPConfig{SendCQ: m1.Dev.NewCQ(), RecvCQ: rcq})
	if err != nil {
		b.Fatal(err)
	}
	src, err := m0.PD.RegisterMemory(make([]byte, msgSize), 0)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := m1.PD.RegisterMemory(make([]byte, msgSize), rdma.AccessLocalWrite|rdma.AccessRemoteWrite)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(msgSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wr := rdma.SendWR{Op: op, Signaled: true, Local: rdma.Segment{MR: src, Length: msgSize}}
		if op == rdma.OpSend {
			if err := qpB.PostRecv(rdma.RecvWR{Local: rdma.Segment{MR: dst, Length: msgSize}}); err != nil {
				b.Fatal(err)
			}
		} else {
			wr.Remote = rdma.RemoteSegment{RKey: dst.RKey()}
		}
		if err := qpA.PostSend(wr); err != nil {
			b.Fatal(err)
		}
		if cpl := scq.Wait(); cpl.Err() != nil {
			b.Fatal(cpl.Err())
		}
	}
}

func BenchmarkRDMASend64KB(b *testing.B)  { benchRDMA(b, rdma.OpSend, 64<<10) }
func BenchmarkRDMAWrite64KB(b *testing.B) { benchRDMA(b, rdma.OpWrite, 64<<10) }
func BenchmarkRDMASend256B(b *testing.B)  { benchRDMA(b, rdma.OpSend, 256) }

func BenchmarkMemoryRegistration(b *testing.B) {
	c, err := rackjoin.NewCluster(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	pd := c.Machine(0).PD
	buf := make([]byte, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr, err := pd.RegisterMemory(buf, rdma.AccessRemoteWrite)
		if err != nil {
			b.Fatal(err)
		}
		if err := mr.Deregister(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZipfHistogram measures the simulator's analytic paper-scale
// skew histogram derivation (128M keys → 1024 partitions).
func BenchmarkZipfHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := datagen.PartitionFractions(128<<20, datagen.SkewHigh, 10)
		if len(f) != 1024 {
			b.Fatal("bad fractions")
		}
	}
}
